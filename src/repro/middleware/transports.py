"""Transports: real TCP sockets and an in-process queue fabric.

Both expose the same tiny interface:

- ``listen(endpoint) -> Listener`` with ``accept() -> Connection``;
- ``connect(endpoint) -> Connection`` with ``send_bytes`` / ``send_many`` /
  ``recv_bytes`` / ``close``.

``TcpTransport`` carries real frames over localhost sockets (used by the
middleware-overhead experiments); ``InprocTransport`` is a zero-dependency
stand-in for unit tests and single-process demos.

Blocking receives are event-driven, not polled: a closed TCP socket is
``shutdown`` first so a peer (or a local thread) blocked in ``recv`` or
``accept`` wakes immediately, and the in-process queues carry explicit
EOF/stop sentinels so a ``close()`` releases any blocked reader without
timeouts.  Sends on one TCP connection are serialised by a per-connection
lock, so concurrent senders can safely share a pooled connection without
interleaving partial frames.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from .. import faults
from .endpoints import Endpoint, parse_endpoint
from .errors import ConnectFailed
from .message import FrameError, recv_frame, send_frame, send_frames

__all__ = [
    "Connection",
    "Listener",
    "TcpTransport",
    "InprocTransport",
    "transport_for",
    "SOCKET_BUFFER_BYTES",
]

#: Explicit per-socket kernel buffer size.  Containers frequently ship a
#: tiny tcp_wmem default (16 KiB here); under sustained one-way
#: small-message load the window collapses to zero and delivery degrades
#: to the ~200 ms TCP persist-timer cadence.  Sizing both buffers up
#: front keeps the window open and the fast path at full rate.
SOCKET_BUFFER_BYTES = 1 << 20


def _size_socket_buffers(sock: socket.socket) -> None:
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, SOCKET_BUFFER_BYTES)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, SOCKET_BUFFER_BYTES)
    except OSError:  # pragma: no cover - platform without the knob
        pass


def _faulted_payloads(key, payload):
    """Fault-injection hook shared by every connection's send path.

    Returns the tuple of payloads to actually put on the wire — usually
    ``(payload,)`` untouched; a ``drop`` returns ``()``, a ``duplicate``
    two copies, a ``corrupt`` a truncated frame (framing stays valid, the
    application decode fails), and a ``disconnect`` raises so the caller
    sees a dead connection.  Costs one ``is None`` check when no injector
    is installed; connections without a fault key (accept-side) are never
    faulted.
    """
    inj = faults.active()
    if inj is None or key is None:
        return (payload,)
    d = inj.decide("transport.send", key)
    if not d:
        return (payload,)
    if d.action == "drop":
        return ()
    if d.action == "delay":
        if d.delay:
            time.sleep(d.delay)
        return (payload,)
    if d.action == "duplicate":
        return (payload, payload)
    if d.action == "corrupt":
        return (payload[: len(payload) // 2],)
    # "disconnect": the connection dies under the sender
    raise ConnectionResetError(f"fault injection: hard disconnect toward {key}")


class Connection:
    """Abstract duplex framed connection."""

    #: destination URL for outbound (dialled) connections — the key the
    #: fault injector matches ``transport.send`` events against; ``None``
    #: on accept-side connections
    fault_key: str | None = None

    def send_bytes(self, payload: bytes) -> None:  # pragma: no cover
        raise NotImplementedError

    def send_many(self, payloads) -> None:
        """Send several frames; transports may coalesce them into one
        syscall.  The default is a plain loop."""
        for payload in payloads:
            self.send_bytes(payload)

    def recv_bytes(self, timeout: float | None = None) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class Listener:
    """Abstract listener."""

    def accept(self, timeout: float | None = None) -> Connection:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------
class _TcpConnection(Connection):
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _size_socket_buffers(sock)

    def fileno(self) -> int:
        return self._sock.fileno()

    def send_bytes(self, payload: bytes) -> None:
        if faults.active() is not None:
            for p in _faulted_payloads(self.fault_key, payload):
                with self._send_lock:
                    send_frame(self._sock, p)
            return
        with self._send_lock:
            send_frame(self._sock, payload)

    def send_many(self, payloads) -> None:
        if faults.active() is not None:
            # per-frame fault decisions; coalescing is irrelevant under chaos
            for payload in payloads:
                self.send_bytes(payload)
            return
        with self._send_lock:
            send_frames(self._sock, payloads)

    def recv_bytes(self, timeout: float | None = None) -> bytes:
        # Save/restore the socket's timeout: a per-call timeout must not
        # leak into later blocking sends/receives on the same socket.
        prev = self._sock.gettimeout()
        self._sock.settimeout(timeout)
        try:
            return recv_frame(self._sock)
        finally:
            try:
                self._sock.settimeout(prev)
            except OSError:  # pragma: no cover - socket died mid-call
                pass

    def close(self) -> None:
        try:
            # shutdown wakes any thread blocked in recv on this socket
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class _TcpListener(Listener):
    def __init__(self, endpoint: Endpoint):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # accepted sockets inherit the listener's buffer sizing
        _size_socket_buffers(self._sock)
        self._sock.bind((endpoint.host, endpoint.port or 0))
        self._sock.listen(128)
        host, port = self._sock.getsockname()
        self.endpoint = Endpoint(scheme="tcp", host=host, port=port)

    def fileno(self) -> int:
        return self._sock.fileno()

    def accept(self, timeout: float | None = None) -> Connection:
        self._sock.settimeout(timeout)
        conn, _ = self._sock.accept()
        return _TcpConnection(conn)

    def close(self) -> None:
        try:
            # wake any thread blocked in accept
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class TcpTransport:
    """Real TCP transport.  ``listen`` with port 0 picks a free port; the
    resulting listener exposes its bound endpoint."""

    def listen(self, endpoint: Endpoint | str) -> _TcpListener:
        ep = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        if ep.scheme != "tcp":
            raise ValueError(f"TcpTransport cannot listen on {ep.url}")
        return _TcpListener(ep)

    def connect(self, endpoint: Endpoint | str, *, timeout: float = 5.0) -> Connection:
        ep = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        if ep.scheme != "tcp":
            raise ValueError(f"TcpTransport cannot connect to {ep.url}")
        try:
            sock = socket.create_connection((ep.host, ep.port), timeout=timeout)
        except OSError as exc:
            raise ConnectFailed(f"cannot connect to {ep.url}: {exc}") from exc
        sock.settimeout(None)
        conn = _TcpConnection(sock)
        conn.fault_key = ep.url
        return conn


# ----------------------------------------------------------------------
# In-process
# ----------------------------------------------------------------------
#: queue sentinels: connection EOF and listener shutdown
_EOF = object()
_STOP = object()


class _InprocConnection(Connection):
    def __init__(self, out_q: "queue.Queue[bytes]", in_q: "queue.Queue[bytes]"):
        self._out = out_q
        self._in = in_q
        self._closed = False

    def send_bytes(self, payload: bytes) -> None:
        if self._closed:
            raise RuntimeError("connection closed")
        if faults.active() is not None:
            for p in _faulted_payloads(self.fault_key, payload):
                self._out.put(p)
            return
        self._out.put(payload)

    def recv_bytes(self, timeout: float | None = None) -> bytes:
        try:
            item = self._in.get(timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError("recv timed out") from exc
        if item is _EOF:
            self._in.put(_EOF)  # latch EOF for any other blocked reader
            raise FrameError("connection closed")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # wake the peer's blocked recv (EOF) and our own
            self._out.put(_EOF)
            self._in.put(_EOF)


class _InprocListener(Listener):
    def __init__(self, transport: "InprocTransport", name: str):
        self.transport = transport
        self.name = name
        self._pending: "queue.Queue[_InprocConnection]" = queue.Queue()
        self.endpoint = Endpoint(scheme="inproc", host=name, port=None)

    def accept(self, timeout: float | None = None) -> Connection:
        try:
            item = self._pending.get(timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError("accept timed out") from exc
        if item is _STOP:
            self._pending.put(_STOP)  # latch for any other blocked acceptor
            raise OSError("listener closed")
        return item

    def close(self) -> None:
        self.transport._listeners.pop(self.name, None)
        self._pending.put(_STOP)  # wake any thread blocked in accept


class InprocTransport:
    """Queue-based transport shared within one process (thread-safe)."""

    def __init__(self):
        self._listeners: dict[str, _InprocListener] = {}
        self._lock = threading.Lock()

    def listen(self, endpoint: Endpoint | str) -> _InprocListener:
        ep = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        if ep.scheme != "inproc":
            raise ValueError(f"InprocTransport cannot listen on {ep.url}")
        with self._lock:
            if ep.host in self._listeners:
                raise ValueError(f"endpoint {ep.url} already bound")
            listener = _InprocListener(self, ep.host)
            self._listeners[ep.host] = listener
        return listener

    def connect(self, endpoint: Endpoint | str, *, timeout: float = 5.0) -> Connection:
        ep = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        if ep.scheme != "inproc":
            raise ValueError(f"InprocTransport cannot connect to {ep.url}")
        with self._lock:
            listener = self._listeners.get(ep.host)
        if listener is None:
            raise ConnectFailed(f"no listener at {ep.url}")
        a_to_b: "queue.Queue[bytes]" = queue.Queue()
        b_to_a: "queue.Queue[bytes]" = queue.Queue()
        client = _InprocConnection(a_to_b, b_to_a)
        client.fault_key = ep.url
        server = _InprocConnection(b_to_a, a_to_b)
        listener._pending.put(server)
        return client


def transport_for(endpoint: Endpoint | str, *, inproc: InprocTransport | None = None):
    """Pick the right transport for an endpoint URL."""
    ep = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
    if ep.scheme == "tcp":
        return TcpTransport()
    if ep.scheme == "inproc":
        if inproc is None:
            raise ValueError("inproc endpoint needs a shared InprocTransport")
        return inproc
    raise ValueError(f"unsupported scheme {ep.scheme!r}")  # pragma: no cover
