"""MeDICi-style pipelines.

A pipeline hosts components; each component has an inbound and an outbound
endpoint and forwards (optionally transforming) every frame it receives —
exactly the role of the MeDICi pipeline in the paper's Figure 7: the
state-estimation code only names the destination; the pipeline does the
store-and-forward routing.

The implementation runs one acceptor thread per component and one handler
thread per accepted connection; ``stop()`` tears everything down.  All
threads block on their transport (accept / recv wake on close via socket
shutdown or queue sentinels) — no timeout polling, so an idle pipeline
consumes no CPU.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from .. import obs
from .endpoints import parse_endpoint
from .message import FrameError
from .transports import InprocTransport, transport_for

__all__ = ["MifComponent", "MifPipeline"]


class MifComponent:
    """A relay component with inbound/outbound endpoints.

    ``transform`` (payload -> payload) models the data processor of the
    architecture's interface layer; the default is the identity relay.
    """

    def __init__(self, name: str = "component", transform: Callable | None = None):
        self.name = name
        self.transform = transform or (lambda payload: payload)
        self.in_endpoint: str | None = None
        self.out_endpoint: str | None = None
        self.frames_relayed = 0
        self.bytes_relayed = 0
        # One handler thread per accepted connection can relay for the
        # same component, so the counters are guarded.
        self._stats_lock = threading.Lock()
        # GridStat-style QoS telemetry: per-frame relay handling latency.
        self._latencies: deque[float] = deque(maxlen=4096)

    def latency_stats(self) -> dict[str, float]:
        """Relay-latency percentiles in seconds (QoS monitoring hook).

        Measures the in-middleware handling time per frame (receive →
        transform → forward), the quantity a GridStat-like QoS manager
        would track against its latency requirements.
        """
        with self._stats_lock:
            lat = list(self._latencies)
        if not lat:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        arr = sorted(lat)
        n = len(arr)
        return {
            "count": float(n),
            "mean": sum(arr) / n,
            "p50": arr[n // 2],
            "p95": arr[min(n - 1, int(0.95 * n))],
            "max": arr[-1],
        }

    def set_in_endpoint(self, url: str) -> None:
        parse_endpoint(url)  # validate eagerly
        self.in_endpoint = url

    def set_out_endpoint(self, url: str) -> None:
        parse_endpoint(url)
        self.out_endpoint = url


class MifPipeline:
    """A pipeline of relay components.

    Usage mirrors the paper's sample code::

        pipeline = MifPipeline()
        se = MifComponent("SE")
        pipeline.add_mif_component(se)
        se.set_in_endpoint("tcp://127.0.0.1:6789")
        se.set_out_endpoint("tcp://127.0.0.1:7890")
        pipeline.start()

    ``inproc`` endpoints require passing a shared :class:`InprocTransport`.
    """

    def __init__(self, *, inproc: InprocTransport | None = None):
        self.components: list[MifComponent] = []
        self.inproc = inproc
        self._threads: list[threading.Thread] = []
        self._listeners = []
        self._conns: list = []
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self.started = False

    def add_mif_component(self, component: MifComponent) -> MifComponent:
        if self.started:
            raise RuntimeError("cannot add components to a running pipeline")
        self.components.append(component)
        return component

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind every component's inbound endpoint and start relaying."""
        if self.started:
            raise RuntimeError("pipeline already started")
        for comp in self.components:
            if not comp.in_endpoint or not comp.out_endpoint:
                raise ValueError(f"component {comp.name} missing endpoints")
            transport = transport_for(comp.in_endpoint, inproc=self.inproc)
            listener = transport.listen(comp.in_endpoint)
            # tcp://host:0 picks a free port; record the bound endpoint
            comp.in_endpoint = listener.endpoint.url
            self._listeners.append(listener)
            thread = threading.Thread(
                target=self._acceptor, args=(comp, listener),
                name=f"mif-{comp.name}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self.started = True

    def stop(self) -> None:
        """Stop accepting, close listeners and every open relay connection
        (which wakes any thread blocked in accept/recv)."""
        self._stop.set()
        for listener in self._listeners:
            listener.close()
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        self.started = False

    # ------------------------------------------------------------------
    def _acceptor(self, comp: MifComponent, listener) -> None:
        while not self._stop.is_set():
            try:
                conn = listener.accept()  # blocks; woken by listener.close()
            except (TimeoutError, OSError):
                if self._stop.is_set():
                    break
                continue
            with self._conns_lock:
                self._conns.append(conn)
            handler = threading.Thread(
                target=self._relay, args=(comp, conn),
                name=f"mif-{comp.name}-relay", daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _relay(self, comp: MifComponent, conn) -> None:
        transport = transport_for(comp.out_endpoint, inproc=self.inproc)
        out = None
        try:
            out = transport.connect(comp.out_endpoint)
            while not self._stop.is_set():
                try:
                    payload = conn.recv_bytes()  # blocks; woken by close()
                except (FrameError, OSError, RuntimeError):
                    break
                t0 = time.perf_counter()
                payload = comp.transform(payload)
                out.send_bytes(payload)
                dt = time.perf_counter() - t0
                with comp._stats_lock:
                    comp._latencies.append(dt)
                    comp.frames_relayed += 1
                    comp.bytes_relayed += len(payload)
                if obs.enabled():
                    obs.metrics().histogram(
                        "mw.pipeline.relay.seconds"
                    ).observe(dt)
        except (ConnectionRefusedError, OSError):  # pragma: no cover - races
            pass
        finally:
            conn.close()
            if out is not None:
                out.close()
