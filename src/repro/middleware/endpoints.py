"""Endpoint URLs.

Every state estimator and data source in the architecture is uniquely
identified by a URL (paper, section IV-A).  Two schemes are supported:

- ``tcp://host:port`` — a real TCP socket endpoint;
- ``inproc://name`` — an in-process queue endpoint (for tests and the
  simulated fabric).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Endpoint", "parse_endpoint"]


@dataclass(frozen=True)
class Endpoint:
    """A parsed endpoint URL."""

    scheme: str
    host: str
    port: int | None

    @property
    def url(self) -> str:
        if self.scheme == "tcp":
            return f"tcp://{self.host}:{self.port}"
        return f"{self.scheme}://{self.host}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.url


def parse_endpoint(url: str) -> Endpoint:
    """Parse ``tcp://host:port`` or ``inproc://name``.

    Raises ``ValueError`` for malformed URLs.
    """
    if "://" not in url:
        raise ValueError(f"missing scheme in endpoint {url!r}")
    scheme, rest = url.split("://", 1)
    if scheme == "tcp":
        if ":" not in rest:
            raise ValueError(f"tcp endpoint needs host:port, got {url!r}")
        host, port_s = rest.rsplit(":", 1)
        if not host:
            raise ValueError(f"empty host in {url!r}")
        try:
            port = int(port_s)
        except ValueError as exc:
            raise ValueError(f"bad port in {url!r}") from exc
        if not 0 <= port < 65536:  # port 0 = "pick a free port" on bind
            raise ValueError(f"port out of range in {url!r}")
        return Endpoint(scheme="tcp", host=host, port=port)
    if scheme == "inproc":
        if not rest:
            raise ValueError(f"empty inproc name in {url!r}")
        return Endpoint(scheme="inproc", host=rest, port=None)
    raise ValueError(f"unsupported scheme {scheme!r}")
