"""Middleware client: the interface-layer API the estimators call.

``MWClient`` provides the paper's ``MW_Client_Send`` / ``MW_Client_Recv``
(Figure 6): a state estimator names the destination estimator; the client
resolves its URL through the registry and moves the data, with the
middleware pipelines doing the routing.  Received data lands in a local
:class:`DataBuffer` that the data processor drains.
"""

from __future__ import annotations

import queue
import threading

from .transports import InprocTransport, transport_for

__all__ = ["DataBuffer", "EndpointRegistry", "MWClient"]


class DataBuffer:
    """The local data buffer of the architecture's interface layer."""

    def __init__(self):
        self._q: "queue.Queue[bytes]" = queue.Queue()

    def put(self, payload: bytes) -> None:
        self._q.put(payload)

    def get(self, timeout: float | None = None) -> bytes:
        try:
            return self._q.get(timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError("data buffer empty") from exc

    def __len__(self) -> int:
        return self._q.qsize()


class EndpointRegistry:
    """Name → endpoint URL resolution (each estimator is uniquely
    identified by a URL; section IV-A)."""

    def __init__(self):
        self._names: dict[str, str] = {}

    def register(self, name: str, url: str) -> None:
        self._names[name] = url

    def resolve(self, name: str) -> str:
        try:
            return self._names[name]
        except KeyError as exc:
            raise KeyError(f"unknown estimator {name!r}") from exc

    def names(self) -> list[str]:
        return sorted(self._names)


class MWClient:
    """Per-site middleware client.

    Parameters
    ----------
    name:
        This estimator's name.
    registry:
        Shared name → URL registry.  ``send`` resolves the *destination
        inbound* URL (usually a pipeline inbound endpoint routed to the
        destination site).
    inproc:
        Shared in-process transport when inproc URLs are used.
    """

    def __init__(
        self,
        name: str,
        registry: EndpointRegistry,
        *,
        inproc: InprocTransport | None = None,
    ):
        self.name = name
        self.registry = registry
        self.inproc = inproc
        self.buffer = DataBuffer()
        self._listener = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    def serve(self, url: str) -> str:
        """Start receiving at ``url``; returns the bound URL (tcp port 0 is
        resolved to the actual port) and registers it under this name."""
        transport = transport_for(url, inproc=self.inproc)
        self._listener = transport.listen(url)
        bound = self._listener.endpoint.url
        self.registry.register(self.name, bound)
        self._thread = threading.Thread(
            target=self._serve_loop, name=f"mw-{self.name}", daemon=True
        )
        self._thread.start()
        return bound

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept(timeout=0.2)
            except (TimeoutError, OSError):
                continue
            threading.Thread(
                target=self._drain, args=(conn,), daemon=True
            ).start()

    def _drain(self, conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    payload = conn.recv_bytes(timeout=0.2)
                except TimeoutError:
                    continue
                except Exception:
                    break
                self.bytes_received += len(payload)
                self.buffer.put(payload)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def send(self, destination: str, payload: bytes) -> None:
        """``MW_Client_Send``: deliver ``payload`` toward ``destination``.

        ``destination`` may be a registered estimator name or a raw URL
        (e.g. a middleware pipeline inbound endpoint).
        """
        url = destination if "://" in destination else self.registry.resolve(destination)
        transport = transport_for(url, inproc=self.inproc)
        with transport.connect(url) as conn:
            conn.send_bytes(payload)
        self.bytes_sent += len(payload)

    def recv(self, timeout: float | None = 5.0) -> bytes:
        """``MW_Client_Recv``: take the next payload from the local buffer."""
        return self.buffer.get(timeout=timeout)

    def close(self) -> None:
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
