"""Middleware client: the interface-layer API the estimators call.

``MWClient`` provides the paper's ``MW_Client_Send`` / ``MW_Client_Recv``
(Figure 6): a state estimator names the destination estimator; the client
resolves its URL through the registry and moves the data, with the
middleware pipelines doing the routing.  Received data lands in a local
:class:`DataBuffer` that the data processor drains.

Fast-path behaviour (on by default):

- **Persistent connection pooling** — ``send`` keeps one long-lived
  connection per destination URL (lazy dial, reuse across sends, idle
  reaping after ``pool_idle_timeout``, one transparent re-dial on a broken
  pipe).  ``pool=False`` restores the legacy connect-per-message pattern
  (kept for the overhead benchmarks).
- **Event-driven receive** — a TCP server runs one ``selectors`` loop over
  the listening socket and every accepted connection (frames reassembled
  incrementally via ``recv_into``, no per-connection polling threads);
  inproc servers block on their queues and are woken by EOF sentinels.
- **Batch coalescing** — ``send_many`` rides all frames to one destination
  on a single scatter-gather syscall.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time

from .. import faults, obs
from .errors import (
    ClientClosed,
    ConnectFailed,
    DeadlineExceeded,
    MiddlewareError,
    RecvTimeout,
    RetryPolicy,
    SendFailed,
)
from .errors import DEFAULT_RETRY
from .message import FrameError, PeerClosed, StreamReader
from .transports import InprocTransport, transport_for

__all__ = ["DataBuffer", "EndpointRegistry", "MWClient"]

#: queue sentinel: buffer closed (latched so every blocked reader wakes)
_CLOSED = object()


class DataBuffer:
    """The local data buffer of the architecture's interface layer.

    Shutdown-aware: :meth:`close` wakes every blocked :meth:`get` with
    :class:`~repro.middleware.errors.ClientClosed` instead of leaving it
    to hang until its timeout.  Payloads enqueued before the close are
    still drained first (FIFO), so a closing client loses no data that
    already arrived.
    """

    def __init__(self):
        self._q: "queue.Queue[bytes]" = queue.Queue()
        self._closed = False

    def put(self, payload: bytes) -> None:
        self._q.put(payload)

    def get(self, timeout: float | None = None) -> bytes:
        try:
            item = self._q.get(timeout=timeout)
        except queue.Empty as exc:
            if self._closed:
                raise ClientClosed("data buffer closed") from None
            raise RecvTimeout("data buffer empty") from exc
        if item is _CLOSED:
            self._q.put(_CLOSED)  # latch for any other blocked reader
            raise ClientClosed("data buffer closed")
        return item

    def close(self) -> None:
        """Mark closed and wake every blocked reader (idempotent)."""
        if not self._closed:
            self._closed = True
            self._q.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self._q.qsize()


class EndpointRegistry:
    """Name → endpoint URL resolution (each estimator is uniquely
    identified by a URL; section IV-A)."""

    def __init__(self):
        self._names: dict[str, str] = {}

    def register(self, name: str, url: str) -> None:
        self._names[name] = url

    def resolve(self, name: str) -> str:
        try:
            return self._names[name]
        except KeyError as exc:
            raise KeyError(f"unknown estimator {name!r}") from exc

    def names(self) -> list[str]:
        return sorted(self._names)


class MWClient:
    """Per-site middleware client.

    Parameters
    ----------
    name:
        This estimator's name.
    registry:
        Shared name → URL registry.  ``send`` resolves the *destination
        inbound* URL (usually a pipeline inbound endpoint routed to the
        destination site).
    inproc:
        Shared in-process transport when inproc URLs are used.
    pool:
        Keep one persistent connection per destination URL (default).
        ``False`` dials a fresh connection per message — the legacy
        pattern, kept for overhead comparisons.
    pool_idle_timeout:
        Close pooled connections unused for this many seconds (reaped
        opportunistically on the next send).
    retry:
        :class:`~repro.middleware.errors.RetryPolicy` for pooled sends.
        Any failure mid-send discards the connection unconditionally (a
        partial write leaves the stream unframeable — reuse would corrupt
        every later message) and retries on a fresh dial with backoff;
        once the budget is spent the caller sees a single typed
        :class:`~repro.middleware.errors.SendFailed`.  ``None`` disables
        retries (one attempt, typed error on failure).
    send_deadline:
        Overall wall-clock budget per ``send``/``send_many`` call across
        all retries, in seconds (``None`` = unbounded).  Exceeding it
        raises :class:`~repro.middleware.errors.SendFailed` (from a
        :class:`~repro.middleware.errors.DeadlineExceeded`).
    """

    def __init__(
        self,
        name: str,
        registry: EndpointRegistry,
        *,
        inproc: InprocTransport | None = None,
        pool: bool = True,
        pool_idle_timeout: float = 30.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        send_deadline: float | None = None,
    ):
        self.name = name
        self.registry = registry
        self.inproc = inproc
        self.pool = pool
        self.pool_idle_timeout = pool_idle_timeout
        self.retry = retry
        self.send_deadline = send_deadline
        self.retries = 0
        self.buffer = DataBuffer()
        self._listener = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._pool: dict[str, object] = {}
        self._pool_last: dict[str, float] = {}
        self._pool_lock = threading.Lock()
        self._accepted: list = []
        self._waker: socket.socket | None = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.dials = 0

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def serve(self, url: str) -> str:
        """Start receiving at ``url``; returns the bound URL (tcp port 0 is
        resolved to the actual port) and registers it under this name."""
        transport = transport_for(url, inproc=self.inproc)
        self._listener = transport.listen(url)
        bound = self._listener.endpoint.url
        self.registry.register(self.name, bound)
        target = (
            self._serve_loop_tcp
            if self._listener.endpoint.scheme == "tcp"
            else self._serve_loop_inproc
        )
        self._thread = threading.Thread(
            target=target, name=f"mw-{self.name}", daemon=True
        )
        self._thread.start()
        return bound

    def _deliver(self, payload) -> None:
        """Account for and enqueue one received payload (also the sink for
        fast-path mux links attached by the fabric)."""
        self.bytes_received += len(payload)
        if obs.enabled():
            obs.metrics().counter("mw.client.frames_received_total").inc()
        self.buffer.put(payload)

    # -- TCP: one selector loop over the listener and every connection --
    def _serve_loop_tcp(self) -> None:
        sel = selectors.DefaultSelector()
        lsock = self._listener._sock
        lsock.setblocking(False)
        wake_r, wake_w = socket.socketpair()
        wake_r.setblocking(False)
        self._waker = wake_w
        sel.register(lsock, selectors.EVENT_READ, ("accept", None))
        sel.register(wake_r, selectors.EVENT_READ, ("wake", None))
        try:
            while not self._stop.is_set():
                for key, _ in sel.select():
                    kind, reader = key.data
                    if kind == "wake":
                        try:
                            key.fileobj.recv(64)
                        except OSError:  # pragma: no cover - shutdown race
                            pass
                    elif kind == "accept":
                        try:
                            conn, _ = lsock.accept()
                        except OSError:
                            continue
                        conn.setblocking(False)
                        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                        sel.register(
                            conn, selectors.EVENT_READ, ("conn", StreamReader())
                        )
                    else:
                        sock = key.fileobj
                        try:
                            for payload in reader.feed(sock):
                                self._deliver(payload)
                        except (PeerClosed, FrameError, OSError):
                            try:
                                sel.unregister(sock)
                            except KeyError:  # pragma: no cover - defensive
                                pass
                            sock.close()
        finally:
            for key in list(sel.get_map().values()):
                try:
                    sel.unregister(key.fileobj)
                    key.fileobj.close()
                except (OSError, KeyError):  # pragma: no cover - defensive
                    pass
            sel.close()
            wake_r.close()

    # -- inproc: blocking accept/recv, woken by queue sentinels --
    def _serve_loop_inproc(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except (TimeoutError, OSError):
                if self._stop.is_set():
                    break
                continue
            self._accepted.append(conn)
            threading.Thread(
                target=self._drain, args=(conn,), daemon=True
            ).start()

    def _drain(self, conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    payload = conn.recv_bytes()  # blocks; EOF sentinel wakes
                except Exception:
                    break
                self._deliver(payload)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # send side: persistent pooled connections
    # ------------------------------------------------------------------
    def _dial(self, url: str):
        inj = faults.active()
        if inj is not None:
            d = inj.decide("client.dial", url)
            if d:
                if d.action == "delay":
                    if d.delay:
                        time.sleep(d.delay)
                else:  # "fail"
                    self.dials += 1
                    raise ConnectFailed(f"fault injection: dial to {url} failed")
        transport = transport_for(url, inproc=self.inproc)
        self.dials += 1
        try:
            return transport.connect(url)
        except ConnectFailed:
            raise
        except (ConnectionError, OSError) as exc:  # pragma: no cover - defensive
            raise ConnectFailed(f"cannot connect to {url}: {exc}") from exc

    def _checkout(self, url: str):
        """Pooled connection for ``url``: lazy dial + idle reaping."""
        now = time.monotonic()
        with self._pool_lock:
            for u in [
                u
                for u, last in self._pool_last.items()
                if u != url and now - last > self.pool_idle_timeout
            ]:
                self._pool.pop(u).close()
                del self._pool_last[u]
            conn = self._pool.get(url)
            if conn is None:
                conn = self._dial(url)
                self._pool[url] = conn
            self._pool_last[url] = now
            return conn

    def _discard(self, url: str, conn) -> None:
        with self._pool_lock:
            if self._pool.get(url) is conn:
                del self._pool[url]
                self._pool_last.pop(url, None)
        conn.close()

    def _send_pooled(self, url: str, op) -> None:
        """Run ``op`` on a pooled connection under the retry policy.

        Partial-write safety: *any* failure mid-``op`` discards the
        connection unconditionally — after an interrupted write the
        stream position is unknown and reuse would corrupt every later
        frame — so each retry always runs on a fresh dial.
        """
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        deadline = (
            None
            if self.send_deadline is None
            else time.monotonic() + self.send_deadline
        )
        last: BaseException | None = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.retries += 1
                if obs.enabled():
                    obs.metrics().counter("mw.client.retries_total").inc()
            try:
                conn = self._checkout(url)
            except (ConnectionError, OSError, MiddlewareError) as exc:
                last = exc
            else:
                try:
                    op(conn)
                    return
                except (ConnectionError, OSError, RuntimeError) as exc:
                    if isinstance(exc, FrameError):
                        raise  # framing errors are not connection failures
                    # stale pool entry, peer restart, or a mid-write
                    # failure: the connection is unusable either way
                    self._discard(url, conn)
                    last = exc
            if attempt < attempts and policy is not None:
                try:
                    policy.sleep(attempt, deadline=deadline)
                except DeadlineExceeded as exc:
                    raise SendFailed(
                        f"send to {url} abandoned at the deadline "
                        f"after {attempt} attempt(s): {last!r}"
                    ) from exc
        if isinstance(last, ConnectFailed):
            raise last  # dial never succeeded; keep ConnectionRefusedError
        raise SendFailed(
            f"send to {url} failed after {attempts} attempt(s): {last!r}"
        ) from last

    def send(self, destination: str, payload: bytes) -> None:
        """``MW_Client_Send``: deliver ``payload`` toward ``destination``.

        ``destination`` may be a registered estimator name or a raw URL
        (e.g. a middleware pipeline inbound endpoint).
        """
        url = destination if "://" in destination else self.registry.resolve(destination)
        if not self.pool:
            transport = transport_for(url, inproc=self.inproc)
            self.dials += 1
            with transport.connect(url) as conn:
                conn.send_bytes(payload)
        else:
            self._send_pooled(url, lambda conn: conn.send_bytes(payload))
        self.bytes_sent += len(payload)
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("mw.client.frames_sent_total").inc()
            reg.counter("mw.client.bytes_sent_total").inc(len(payload))

    def send_many(self, destination: str, payloads) -> None:
        """Deliver several payloads toward one destination, coalesced into
        a single scatter-gather syscall on TCP."""
        payloads = list(payloads)
        if not payloads:
            return
        url = destination if "://" in destination else self.registry.resolve(destination)
        if not self.pool:
            transport = transport_for(url, inproc=self.inproc)
            self.dials += 1
            with transport.connect(url) as conn:
                conn.send_many(payloads)
        else:
            self._send_pooled(url, lambda conn: conn.send_many(payloads))
        nbytes = sum(len(p) for p in payloads)
        self.bytes_sent += nbytes
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("mw.client.frames_sent_total").inc(len(payloads))
            reg.counter("mw.client.bytes_sent_total").inc(nbytes)

    def recv(self, timeout: float | None = 5.0) -> bytes:
        """``MW_Client_Recv``: take the next payload from the local buffer.

        Raises :class:`~repro.middleware.errors.RecvTimeout` (a
        ``TimeoutError``) when nothing arrives in time, and
        :class:`~repro.middleware.errors.ClientClosed` once the client is
        closed — a shutdown wakes blocked receivers immediately instead
        of letting them sit out the timeout.
        """
        return self.buffer.get(timeout=timeout)

    def close(self) -> None:
        self._stop.set()
        self.buffer.close()  # wake anyone blocked in recv
        with self._pool_lock:
            for conn in self._pool.values():
                conn.close()
            self._pool.clear()
            self._pool_last.clear()
        if self._waker is not None:
            try:
                self._waker.send(b"x")
            except OSError:  # pragma: no cover - already closed
                pass
            self._waker.close()
            self._waker = None
        if self._listener is not None:
            self._listener.close()
        for conn in self._accepted:
            conn.close()
        self._accepted.clear()
