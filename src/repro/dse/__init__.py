"""Distributed state estimation: decomposition, sensitivity, DSE, hierarchical."""

from .baddata import (
    DistributedBadDataReport,
    SubsystemBadData,
    distributed_bad_data,
)
from .algorithm import (
    BYTES_PER_EXCHANGED_BUS,
    DistributedStateEstimator,
    DseResult,
    SubsystemRecord,
)
from .condensation import CondensedStep2, neighbor_publication_sets
from .decomposition import (
    Decomposition,
    decompose,
    decompose_by_areas,
    decompose_with_sizes,
    extract_subnetwork,
)
from .hierarchical import HierarchicalResult, HierarchicalStateEstimator
from .pseudo import (
    MeasurementAssignment,
    assign_measurements,
    dse_pmu_placement,
    localize_measurements,
    pseudo_measurements,
)
from .sensitivity import (
    boundary_sensitivity,
    exchange_bus_sets,
    sensitive_internal_buses,
)

__all__ = [
    "Decomposition",
    "decompose",
    "decompose_by_areas",
    "decompose_with_sizes",
    "extract_subnetwork",
    "boundary_sensitivity",
    "sensitive_internal_buses",
    "exchange_bus_sets",
    "MeasurementAssignment",
    "assign_measurements",
    "localize_measurements",
    "pseudo_measurements",
    "dse_pmu_placement",
    "DistributedStateEstimator",
    "DseResult",
    "SubsystemRecord",
    "BYTES_PER_EXCHANGED_BUS",
    "CondensedStep2",
    "neighbor_publication_sets",
    "HierarchicalStateEstimator",
    "HierarchicalResult",
    "distributed_bad_data",
    "DistributedBadDataReport",
    "SubsystemBadData",
]
