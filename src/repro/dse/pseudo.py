"""Pseudo-measurement construction and measurement assignment for DSE.

Splits a system-wide measurement snapshot into per-subsystem local sets
(respecting what each step of the DSE algorithm may legally use) and builds
the pseudo measurements exchanged between neighbours in DSE Step 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..measurements.types import Measurement, MeasType, MeasurementSet
from .decomposition import Decomposition

__all__ = [
    "MeasurementAssignment",
    "assign_measurements",
    "localize_measurements",
    "pseudo_measurements",
    "dse_pmu_placement",
    "PSEUDO_SIGMA_VM",
    "PSEUDO_SIGMA_VA",
]

#: Default standard deviations for pseudo measurements (the neighbour's
#: estimate is treated as a meter of roughly PMU quality).
PSEUDO_SIGMA_VM = 0.004
PSEUDO_SIGMA_VA = 0.004


@dataclass
class MeasurementAssignment:
    """Row sets of the global measurement vector usable per subsystem.

    ``step1[s]`` — rows valid on the isolated subsystem (internal flows,
    internal-bus injections, voltages, PMU angles).
    ``step2_extra[s]`` — rows that additionally become valid on the extended
    subsystem of Step 2 (boundary-bus injections, tie-line flows metered at
    a bus of ``s``).
    """

    step1: dict[int, np.ndarray]
    step2_extra: dict[int, np.ndarray]


def assign_measurements(dec: Decomposition, mset: MeasurementSet) -> MeasurementAssignment:
    """Assign each global measurement row to subsystem step sets."""
    net = dec.net
    part = dec.part
    tie_set = set(dec.tie_lines.tolist())
    boundary: dict[int, set] = {
        s: set(dec.boundary_buses(s).tolist()) for s in range(dec.m)
    }
    step1: dict[int, list[int]] = {s: [] for s in range(dec.m)}
    extra: dict[int, list[int]] = {s: [] for s in range(dec.m)}

    for row, m in enumerate(mset):
        t, el = m.mtype, m.element
        if t in (MeasType.V_MAG, MeasType.PMU_VA):
            step1[int(part[el])].append(row)
        elif t in (MeasType.P_INJ, MeasType.Q_INJ):
            s = int(part[el])
            if el in boundary[s]:
                extra[s].append(row)  # involves tie flows: Step 2 only
            else:
                step1[s].append(row)
        else:  # branch-referenced
            if t in (MeasType.P_FLOW_F, MeasType.Q_FLOW_F, MeasType.I_MAG_F):
                end_bus = int(net.f[el])
            else:
                end_bus = int(net.t[el])
            s = int(part[end_bus])
            if el in tie_set:
                extra[s].append(row)
            else:
                # internal branch: both ends in the same subsystem
                step1[int(part[net.f[el]])].append(row)

    return MeasurementAssignment(
        step1={s: np.array(v, dtype=np.int64) for s, v in step1.items()},
        step2_extra={s: np.array(v, dtype=np.int64) for s, v in extra.items()},
    )


def localize_measurements(
    mset: MeasurementSet,
    rows: np.ndarray,
    bus_map: np.ndarray,
    branch_map: np.ndarray,
) -> MeasurementSet:
    """Re-index the selected global rows into subnetwork element numbering."""
    out: list[Measurement] = []
    for row in rows:
        m = mset[int(row)]
        local = bus_map[m.element] if m.mtype.is_bus else branch_map[m.element]
        if local < 0:
            raise ValueError(
                f"measurement row {row} references element outside subnetwork"
            )
        out.append(Measurement(m.mtype, int(local), m.value, m.sigma))
    return MeasurementSet(out)


def pseudo_measurements(
    buses_local: np.ndarray,
    Vm: np.ndarray,
    Va: np.ndarray,
    *,
    sigma_vm: float = PSEUDO_SIGMA_VM,
    sigma_va: float = PSEUDO_SIGMA_VA,
) -> MeasurementSet:
    """Pseudo V/θ measurements at the given *local* bus indices.

    ``Vm``/``Va`` are aligned with ``buses_local``.  The angles are
    synchronized (PMU-grade) values, so they enter as ``PMU_VA`` channels —
    this is what lets Step 2 stitch neighbouring references together.
    """
    out: list[Measurement] = []
    for b, vm, va in zip(buses_local, Vm, Va):
        out.append(Measurement(MeasType.V_MAG, int(b), float(vm), sigma_vm))
        out.append(Measurement(MeasType.PMU_VA, int(b), float(va), sigma_va))
    return MeasurementSet(out)


def dse_pmu_placement(dec: Decomposition, sigmas: dict | None = None) -> MeasurementSet:
    """One PMU per subsystem, sited at its highest-degree boundary bus.

    Guarantees every local estimator has a synchronized angle anchor, the
    precondition of the phasor-assisted DSE algorithm the paper builds on.
    """
    from ..measurements.placement import pmu_placement

    net = dec.net
    deg = np.zeros(net.n_bus, dtype=np.int64)
    pairs = net.adjacency_pairs()
    np.add.at(deg, pairs[:, 0], 1)
    np.add.at(deg, pairs[:, 1], 1)

    sites = []
    for s in range(dec.m):
        cands = dec.boundary_buses(s)
        if not cands.size:
            cands = dec.buses(s)
        sites.append(int(cands[np.argmax(deg[cands])]))
    return pmu_placement(net, np.array(sorted(sites)), sigmas)
