"""Hierarchical state estimation (the industry-practice baseline).

Two-level scheme (paper, section I): each balancing-authority subsystem runs
a local WLS with its *own* angle reference, then a centralized coordinator
aligns the references.  The coordinator estimates one angle offset per
subsystem from the tie-line flow measurements (and any PMU angles) via a
small Gauss-Newton problem on the full network model — the classical
coordination step of multi-area estimators.

Unlike the decentralized DSE, all coordination data flows to a single
coordinator: the communication structure the paper contrasts against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..estimation.results import EstimationResult
from ..estimation.wls import WlsEstimator
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from ..middleware.message import state_update_nbytes
from .decomposition import Decomposition, extract_subnetwork
from .pseudo import assign_measurements, localize_measurements

__all__ = ["HierarchicalResult", "HierarchicalStateEstimator"]


@dataclass
class HierarchicalResult:
    """Outcome of a hierarchical estimation."""

    Vm: np.ndarray
    Va: np.ndarray
    offsets: np.ndarray
    local_results: dict[int, EstimationResult]
    coordinator_iterations: int
    local_times: dict[int, float] = field(default_factory=dict)
    coordinator_time: float = 0.0
    bytes_to_coordinator: int = 0

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
            "vm_max": float(np.max(np.abs(self.Vm - Vm_true))),
            "va_max": float(np.max(np.abs(dva))),
        }


class HierarchicalStateEstimator:
    """Two-level hierarchical estimator over a decomposition.

    Parameters
    ----------
    dec:
        Subsystem decomposition (balancing authorities).
    mset:
        System-wide measurement snapshot.
    solver:
        Solver for the local WLS runs.
    """

    def __init__(self, dec: Decomposition, mset: MeasurementSet, *, solver: str = "lu"):
        self.dec = dec
        self.mset = mset
        self.solver = solver
        self.assignment = assign_measurements(dec, mset)

    def run(self, *, coord_iters: int = 5, tol: float = 1e-10) -> HierarchicalResult:
        """Run local estimations, then the coordinator alignment."""
        dec, net = self.dec, self.dec.net
        Vm = np.ones(net.n_bus)
        Va = np.zeros(net.n_bus)
        local_results: dict[int, EstimationResult] = {}
        local_times: dict[int, float] = {}

        # ---- Level 1: local estimations with local references ----
        for s in range(dec.m):
            own = dec.buses(s)
            internal = dec.internal_branches(s)
            subnet, bmap, _ = extract_subnetwork(
                net, own, internal, reference_bus=int(own[0]), name=f"ba{s}"
            )
            ms = localize_measurements(
                self.mset, self.assignment.step1[s], bmap, self._branch_map(internal)
            )
            t0 = time.perf_counter()
            est = WlsEstimator(subnet, ms, solver=self.solver, reference_bus=bmap[own[0]])
            res = est.estimate(tol=1e-8)
            local_times[s] = time.perf_counter() - t0
            local_results[s] = res
            Vm[own] = res.Vm
            Va[own] = res.Va

        # ---- Level 2: coordinator aligns per-subsystem angle offsets ----
        coord_rows = self._coordination_rows()
        coord = self.mset.subset(coord_rows)
        model = MeasurementModel(net, coord)
        membership = sp.csr_matrix(
            (np.ones(net.n_bus), (np.arange(net.n_bus), dec.part)),
            shape=(net.n_bus, dec.m),
        )
        # Reference: subsystem 0's offset pinned at zero unless PMU angles
        # provide an absolute reference.
        has_pmu = coord.count(MeasType.PMU_VA) > 0
        free = np.arange(1, dec.m) if not has_pmu else np.arange(dec.m)

        alpha = np.zeros(dec.m)
        w = coord.weights
        t0 = time.perf_counter()
        iters = 0
        for iters in range(1, coord_iters + 1):
            va_glob = Va + alpha[dec.part]
            r = coord.z - model.h(Vm, va_glob)
            H = model.jacobian(Vm, va_glob).tocsc()[:, : net.n_bus]
            J = (H @ membership).tocsc()[:, free]
            G = (J.T @ J.multiply(w[:, None])).toarray()
            rhs = J.T @ (w * r)
            try:
                da = np.linalg.solve(G + 1e-12 * np.eye(len(free)), rhs)
            except np.linalg.LinAlgError:
                break
            alpha[free] += da
            if np.max(np.abs(da)) < tol:
                break
        coord_time = time.perf_counter() - t0

        Va = Va + alpha[dec.part]
        # Uplink accounting uses the same packed-frame sizes as the DSE's
        # wire accounting: one state-update frame of boundary states per
        # subsystem plus one frame's worth of coordination rows.
        bytes_up = sum(
            state_update_nbytes(len(dec.boundary_buses(s)))
            for s in range(dec.m)
        ) + state_update_nbytes(len(coord_rows))

        return HierarchicalResult(
            Vm=Vm,
            Va=Va,
            offsets=alpha,
            local_results=local_results,
            coordinator_iterations=iters,
            local_times=local_times,
            coordinator_time=coord_time,
            bytes_to_coordinator=bytes_up,
        )

    # ------------------------------------------------------------------
    def _branch_map(self, branches: np.ndarray) -> np.ndarray:
        bm = -np.ones(self.dec.net.n_branch, dtype=np.int64)
        bm[branches] = np.arange(len(branches))
        return bm

    def _coordination_rows(self) -> np.ndarray:
        """Measurement rows the coordinator uses: tie-line flows, boundary
        injections and PMU angles."""
        dec, ms = self.dec, self.mset
        ties = set(dec.tie_lines.tolist())
        boundary = set(
            np.concatenate([dec.boundary_buses(s) for s in range(dec.m)]).tolist()
        )
        rows = []
        for row, m in enumerate(ms):
            if m.mtype in (MeasType.P_FLOW_F, MeasType.Q_FLOW_F, MeasType.P_FLOW_T,
                           MeasType.Q_FLOW_T, MeasType.I_MAG_F):
                if m.element in ties:
                    rows.append(row)
            elif m.mtype in (MeasType.P_INJ, MeasType.Q_INJ):
                if m.element in boundary:
                    rows.append(row)
            elif m.mtype == MeasType.PMU_VA:
                rows.append(row)
        return np.array(rows, dtype=np.int64)
