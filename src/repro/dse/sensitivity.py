"""Sensitivity analysis: identifying sensitive internal buses.

The DSE preliminary step (paper, section II) runs a sensitivity analysis
once per topology to find internal buses whose states react strongly to the
boundary conditions — those states, along with the boundary buses, are
re-evaluated in DSE Step 2 and exchanged as pseudo measurements.

We use the DC sensitivity matrix: with internal buses ``i`` and boundary
buses ``b`` of a subsystem, ``dθ_i/dθ_b = -B_ii⁻¹ B_ib``.  A bus is
*sensitive* when the 1-norm of its row exceeds ``threshold`` — its angle
moves almost as much as the boundary does.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..grid.network import Network
from .decomposition import Decomposition

__all__ = ["boundary_sensitivity", "sensitive_internal_buses", "exchange_bus_sets"]


def _b_matrix(net: Network) -> sp.csc_matrix:
    """DC susceptance matrix B' (n x n) over in-service branches."""
    n = net.n_bus
    live = net.live_branches()
    f, t = net.f[live], net.t[live]
    bsus = 1.0 / (net.x[live] * net.tap[live])
    rows = np.concatenate([f, f, t, t])
    cols = np.concatenate([f, t, f, t])
    vals = np.concatenate([bsus, -bsus, -bsus, bsus])
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()


def boundary_sensitivity(dec: Decomposition, s: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sensitivity of internal angles to boundary angles for subsystem ``s``.

    Returns ``(internal, boundary, S)`` with ``S[i, j] = dθ_internal[i] /
    dθ_boundary[j]`` computed on the subsystem's internal DC model.
    """
    net = dec.net
    members = dec.buses(s)
    boundary = dec.boundary_buses(s)
    internal = np.setdiff1d(members, boundary)
    if not internal.size or not boundary.size:
        return internal, boundary, np.zeros((len(internal), len(boundary)))

    bmat = _b_matrix(net)
    B_ii = bmat[np.ix_(internal, internal)].tocsc()
    B_ib = bmat[np.ix_(internal, boundary)].toarray()
    try:
        lu = spla.splu(B_ii + 1e-10 * sp.eye(len(internal), format="csc"))
        S = -lu.solve(B_ib)
    except RuntimeError:
        # Degenerate internal block (isolated internals): fall back to zeros.
        S = np.zeros((len(internal), len(boundary)))
    return internal, boundary, S


def sensitive_internal_buses(
    dec: Decomposition, s: int, *, threshold: float = 0.5
) -> np.ndarray:
    """Internal buses of ``s`` whose angle tracks the boundary strongly.

    ``threshold`` is on the max absolute row entry of the sensitivity
    matrix; 0.5 marks buses that move at least half as much as some boundary
    bus.  Row sums of the DC sensitivity are 1 (a uniform boundary shift
    shifts every internal bus equally), so the *max-entry* criterion — not
    the row sum — discriminates electrically close buses.
    """
    internal, _, S = boundary_sensitivity(dec, s)
    if not internal.size:
        return internal
    if S.size == 0:
        return np.zeros(0, dtype=np.int64)
    score = np.abs(S).max(axis=1)
    return internal[score >= threshold]


def exchange_bus_sets(
    dec: Decomposition, *, threshold: float = 0.5
) -> dict[int, np.ndarray]:
    """Per-subsystem exchange set: boundary + sensitive internal buses.

    These are the buses whose Step-1/Step-2 solutions a subsystem publishes
    to its neighbours (the ``gs`` count of Expression (5)).
    """
    out: dict[int, np.ndarray] = {}
    for s in range(dec.m):
        boundary = dec.boundary_buses(s)
        sensitive = sensitive_internal_buses(dec, s, threshold=threshold)
        out[s] = np.unique(np.concatenate([boundary, sensitive]))
    return out
