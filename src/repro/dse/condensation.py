"""Schur-complement boundary condensation for DSE Step 2.

The reference Step 2 re-evaluates each subsystem's *full* extended network
every round, so the per-round solve scales with subsystem size even though
only the boundary couples neighbours.  Condensation freezes the extended
gain matrix ``G = Hᵀ W H`` at a canonical linearization point and
eliminates the interior states onto the boundary once per frame topology
(:class:`~repro.estimation.solvers.SchurGainSolver`):

.. code-block:: text

    S = G_BB − G_BI G_II⁻¹ G_IB          once per topology
    dx_B = S⁻¹ (rhs_B − G_IBᵀ G_II⁻¹ rhs_I)   per iteration (boundary-sized)
    dx_I = G_II⁻¹ rhs_I − W dx_B              local back-substitution

Each iteration still evaluates the *exact* residual and Jacobian at the
current state — ``rhs = H(x)ᵀ W (z − h(x))`` — so the fixed point of the
iteration is the exact WLS stationary point (``H(x*)ᵀ W r(x*) = 0``);
freezing only the gain operator turns Gauss-Newton into a quasi-Newton
scheme with linear convergence near the solution.  The iteration is run
to a tighter internal tolerance to keep final-state parity with the
reference path at ≤1e-8, and falls back to the exact reference solve on
the rare frame where the frozen operator does not contract fast enough.

The linearization point must be *history-free* for the repo's
bit-identical-across-executors property to survive condensation: a process
worker may first touch a subsystem's cache on any round, so an operator
frozen "at the first state seen" would differ between serial and pooled
runs.  The DSE therefore passes the frame's Step-1 publication (restricted
to the extended network) as an explicit ``lin_point`` with every call —
the same arrays on every executor — and :class:`CondensedStep2` refactors
only when the point actually changes (exact array match), so all rounds of
a frame share one factorization, repeated identical frames reuse it, and
tracking frames refactor once per frame.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..estimation.results import EstimationResult
from ..estimation.solvers import GainSolveError, SchurGainSolver
from ..estimation.wls import EstimationError, WlsEstimator
from .decomposition import Decomposition

__all__ = ["CondensedStep2", "neighbor_publication_sets"]


def neighbor_publication_sets(dec: Decomposition) -> dict[int, dict[int, np.ndarray]]:
    """Per-neighbour condensed publication sets.

    ``out[s][n]`` holds the sorted global buses of subsystem ``s`` that are
    endpoints of ``s``–``n`` tie lines — exactly the subset of ``s``'s
    boundary that appears in ``n``'s extended network, i.e. everything
    ``n``'s Step-2 solve can consume from ``s``.  Sensitive-internal
    publications only refresh ``s``'s *own* entries in the global state
    (an update-scope concern) and are never read by a neighbour's solve,
    so under condensation they stay off the wire.
    """
    net = dec.net
    out: dict[int, dict[int, np.ndarray]] = {}
    for s in range(dec.m):
        ties = dec.incident_tie_lines(s)
        f, t = net.f[ties], net.t[ties]
        f_ours = dec.part[f] == s
        ours = np.where(f_ours, f, t)
        theirs = np.where(f_ours, t, f)
        out[s] = {
            int(nb): np.unique(ours[dec.part[theirs] == nb])
            for nb in dec.neighbors(s)
        }
    return out


class CondensedStep2:
    """Condensed drop-in for the cached Step-2 :class:`WlsEstimator`.

    Wraps the warm extended-network estimator of one subsystem and exposes
    the same ``estimate(x0=, tol=, z=)`` call surface, so the in-process
    algorithm, the process-pool task functions and the live runtime use it
    unchanged through ``_step2_cache``.

    Parameters
    ----------
    est:
        The subsystem's cached extended-network estimator (owns the
        Jacobian pattern caches the condensed iteration reuses).
    boundary_buses_local:
        Local bus indices of the coupling set — the subsystem's own
        boundary buses plus the external boundary buses; both of each
        bus's states (Va, Vm) become boundary states of the Schur split.
    inner_tol_scale:
        The frozen-gain iteration stops on ``step < tol * inner_tol_scale``
        (tighter than the reference's ``step < tol``) so its linear tail
        still lands within reference parity.
    max_iter:
        Iteration cap for the linearly-convergent frozen-gain loop
        (higher than Gauss-Newton's since each iteration is much cheaper);
        on hitting the cap without converging the call falls back to the
        wrapped reference estimator.
    """

    def __init__(
        self,
        est: WlsEstimator,
        boundary_buses_local: np.ndarray,
        *,
        inner_tol_scale: float = 0.1,
        max_iter: int = 150,
    ):
        self.est = est
        n = est.net.n_bus
        pos = -np.ones(2 * n, dtype=np.int64)
        pos[est._keep] = np.arange(est.n_states)
        b = np.unique(np.asarray(boundary_buses_local, dtype=np.int64))
        cand = np.concatenate([b, n + b])  # Va states, then Vm states
        bpos = pos[cand]
        self.boundary_states = np.sort(bpos[bpos >= 0])
        self.schur = SchurGainSolver(self.boundary_states, est.n_states)
        self.inner_tol_scale = float(inner_tol_scale)
        self.max_iter = int(max_iter)
        self.factor_time = 0.0
        self.factor_count = 0
        self.fallbacks = 0
        self._lin_cache: tuple[np.ndarray, np.ndarray] | None = None

    # -- sizes ----------------------------------------------------------
    @property
    def n_boundary_states(self) -> int:
        return self.schur.n_boundary

    @property
    def n_interior_states(self) -> int:
        return self.schur.n_interior

    # ------------------------------------------------------------------
    def factor(
        self, Vm: np.ndarray | None = None, Va: np.ndarray | None = None
    ) -> None:
        """Condense the gain operator at the given linearization point.

        Defaults to the subnetwork's case voltage profile (the only
        history-free point available without caller input).  The DSE
        instead passes the frame's Step-1 publication through
        :meth:`estimate`'s ``lin_point``, which lands here via
        :meth:`_ensure_factored`.
        """
        est = self.est
        if Vm is None:
            Vm = est.net.Vm0
        if Va is None:
            Va = est.net.Va0
        t0 = time.perf_counter()
        H = est._jacobian_at(
            np.asarray(Vm, dtype=float), np.asarray(Va, dtype=float)
        )
        self.schur.factor(H, est.mset.weights)
        self.factor_time += time.perf_counter() - t0
        self.factor_count += 1
        if obs.enabled():
            obs.metrics().counter("dse.condensation.factorizations_total").inc()

    def _ensure_factored(
        self, lin_point: tuple[np.ndarray, np.ndarray] | None
    ) -> None:
        """Factor on demand; with a ``lin_point``, refactor only when the
        point differs from the cached one (exact match), so every round of
        a frame — on any executor — shares the identical operator and
        repeated identical frames skip the refactorization entirely."""
        if lin_point is None:
            if not self.schur.factored:
                self.factor()
            return
        vm, va = lin_point
        cached = self._lin_cache
        if (
            cached is not None
            and np.array_equal(cached[0], vm)
            and np.array_equal(cached[1], va)
        ):
            return
        self.factor(vm, va)
        self._lin_cache = (
            np.array(vm, dtype=float, copy=True),
            np.array(va, dtype=float, copy=True),
        )

    def lin_point_cached(
        self, lin_point: tuple[np.ndarray, np.ndarray] | None
    ) -> bool:
        """True when ``lin_point`` exactly matches the operator already
        factored, i.e. :meth:`estimate` would reuse the factorization.

        The recovery plane leans on this: a checkpointed linearisation
        point round-trips the ``FLAG_CHECKPOINT`` wire form bit-exactly
        (float64 both sides), so a failover successor restoring a donor's
        checkpoint hits the cache instead of re-condensing the subsystem.
        """
        if lin_point is None:
            return self.schur.factored
        cached = self._lin_cache
        return (
            cached is not None
            and np.array_equal(cached[0], lin_point[0])
            and np.array_equal(cached[1], lin_point[1])
        )

    # ------------------------------------------------------------------
    def estimate(
        self,
        *,
        x0: tuple[np.ndarray, np.ndarray] | None = None,
        tol: float = 1e-8,
        max_iter: int | None = None,
        reference_angle: float = 0.0,
        z: np.ndarray | None = None,
        lin_point: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> EstimationResult:
        """Frozen-gain iteration over the condensed operator.

        Mirrors :meth:`WlsEstimator.estimate` (same signature, same
        :class:`EstimationResult`) plus ``lin_point`` — the linearization
        point to condense at (refactors only when it changes); raises
        :class:`EstimationError` on a failed solve.
        """
        est = self.est
        net, model, ms = est.net, est.model, est.mset
        n = net.n_bus
        if z is None:
            z = ms.z
        elif len(z) != len(ms):
            raise ValueError("z override length mismatch")
        self._ensure_factored(lin_point)

        if x0 is None:
            Vm = np.ones(n)
            Va = np.full(n, reference_angle)
        else:
            Vm, Va = x0[0].copy(), x0[1].copy()
        if not est.has_pmu_angles:
            Va[est.reference_bus] = reference_angle

        t_start = time.perf_counter() if obs.enabled() else 0.0
        w = ms.weights
        inner_tol = tol * self.inner_tol_scale
        limit = self.max_iter if max_iter is None else max_iter
        step_norms: list[float] = []
        converged = False
        it = 0
        r = z - model.h(Vm, Va)
        for it in range(1, limit + 1):
            H = est._jacobian_at(Vm, Va)
            # Exact gradient at the current state; only the (frozen,
            # condensed) gain operator is approximate.
            rhs = H.T @ (w * r)
            try:
                dx = self.schur.solve(rhs)
            except GainSolveError as exc:
                raise EstimationError(
                    f"condensed normal-equation solve failed: {exc}"
                ) from exc
            full_dx = np.zeros(2 * n)
            full_dx[est._keep] = dx
            Va += full_dx[:n]
            Vm += full_dx[n:]
            r = z - model.h(Vm, Va)
            step = float(np.max(np.abs(dx))) if len(dx) else 0.0
            step_norms.append(step)
            if step < inner_tol:
                converged = True
                break
            if not np.isfinite(step) or step > 1e3:
                # Diverging (frozen operator far from contracting): stop
                # burning iterations and take the fallback below.
                break

        if not converged:
            # Stiff frame: the frozen operator is not contracting fast
            # enough.  Fall back to the exact reference solve — itself a
            # deterministic function of the same (x0, z, tol) inputs, so
            # parity and cross-executor determinism survive the fallback.
            self.fallbacks += 1
            if obs.enabled():
                obs.metrics().counter("dse.condensation.fallbacks_total").inc()
            return est.estimate(
                x0=x0, tol=tol, reference_angle=reference_angle, z=z
            )

        objective = float(r @ (w * r))
        if obs.enabled():
            reg = obs.metrics()
            reg.histogram("wls.estimate.seconds", solver="schur").observe(
                time.perf_counter() - t_start
            )
            reg.counter("wls.iterations_total", solver="schur").inc(it)
        return EstimationResult(
            converged=True,
            iterations=it,
            Vm=Vm,
            Va=Va,
            residuals=r,
            objective=objective,
            dof=len(ms) - est.n_states,
            step_norms=step_norms,
        )
