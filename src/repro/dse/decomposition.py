"""Power-system decomposition into non-overlapping subsystems.

The preliminary step of the DSE algorithm (paper, section II): split the
network into ``m`` subsystems connected by tie lines, identify the boundary
buses, and expose the decomposition as a weighted quotient graph — the
object the paper's mapping method partitions onto HPC clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.islands import subgraph_components
from ..grid.network import BusType, Network
from ..partition import WeightedGraph, partition_kway

__all__ = ["Decomposition", "decompose", "decompose_by_areas", "extract_subnetwork"]


@dataclass
class Decomposition:
    """A partition of a network's buses into ``m`` subsystems.

    Attributes
    ----------
    net:
        The decomposed network.
    part:
        Bus → subsystem label, shape ``(n_bus,)``.
    m:
        Number of subsystems.
    """

    net: Network
    part: np.ndarray
    m: int
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.part = np.asarray(self.part, dtype=np.int64)
        if len(self.part) != self.net.n_bus:
            raise ValueError("part vector length mismatch")
        if self.part.min() < 0 or self.part.max() >= self.m:
            raise ValueError("subsystem labels out of range")

    # ------------------------------------------------------------------
    def buses(self, s: int) -> np.ndarray:
        """Bus indices of subsystem ``s``."""
        return np.flatnonzero(self.part == s)

    def sizes(self) -> np.ndarray:
        """Bus count per subsystem."""
        return np.bincount(self.part, minlength=self.m)

    @property
    def tie_lines(self) -> np.ndarray:
        """Indices of in-service branches crossing subsystems."""
        if "ties" not in self._cache:
            live = self.net.live_branches()
            cross = self.part[self.net.f[live]] != self.part[self.net.t[live]]
            self._cache["ties"] = live[cross]
        return self._cache["ties"]

    def internal_branches(self, s: int) -> np.ndarray:
        """In-service branches with both ends in subsystem ``s``."""
        live = self.net.live_branches()
        inside = (self.part[self.net.f[live]] == s) & (self.part[self.net.t[live]] == s)
        return live[inside]

    def boundary_buses(self, s: int) -> np.ndarray:
        """Buses of ``s`` incident to at least one tie line."""
        ties = self.tie_lines
        ends = np.concatenate([self.net.f[ties], self.net.t[ties]])
        ours = ends[self.part[ends] == s]
        return np.unique(ours)

    def external_boundary_buses(self, s: int) -> np.ndarray:
        """Buses of *other* subsystems directly across a tie line from ``s``."""
        ties = self.incident_tie_lines(s)
        ends = np.concatenate([self.net.f[ties], self.net.t[ties]])
        theirs = ends[self.part[ends] != s]
        return np.unique(theirs)

    def incident_tie_lines(self, s: int) -> np.ndarray:
        """Tie lines with exactly one end in subsystem ``s``."""
        ties = self.tie_lines
        touch = (self.part[self.net.f[ties]] == s) | (self.part[self.net.t[ties]] == s)
        return ties[touch]

    def neighbors(self, s: int) -> np.ndarray:
        """Subsystems sharing a tie line with ``s``."""
        ties = self.incident_tie_lines(s)
        labels = np.concatenate([self.part[self.net.f[ties]], self.part[self.net.t[ties]]])
        return np.unique(labels[labels != s])

    def quotient_edges(self) -> list[tuple[int, int]]:
        """Unique subsystem adjacency pairs (u < v)."""
        ties = self.tie_lines
        a = self.part[self.net.f[ties]]
        b = self.part[self.net.t[ties]]
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        pairs = np.unique(np.column_stack([lo, hi]), axis=0)
        return [(int(u), int(v)) for u, v in pairs]

    def diameter(self) -> int:
        """Diameter of the quotient graph (bounds DSE Step 2 rounds)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.m))
        g.add_edges_from(self.quotient_edges())
        if not nx.is_connected(g):
            return self.m  # defensive upper bound
        return nx.diameter(g)

    def quotient_graph(
        self,
        *,
        vwgt: np.ndarray | None = None,
        ewgt_map=None,
    ) -> WeightedGraph:
        """The decomposition graph G = (V, E) of section IV-B.1.

        Default weights follow the paper's initialisation: vertex weight =
        bus count, edge weight = sum of the endpoint subsystems' bus counts
        (the upper bound of Expression (5)).
        """
        sizes = self.sizes()
        if vwgt is None:
            vwgt = sizes
        edges = self.quotient_edges()
        if ewgt_map is None:
            ewgt = [int(sizes[u] + sizes[v]) for u, v in edges]
        else:
            ewgt = [int(ewgt_map(u, v)) for u, v in edges]
        return WeightedGraph.from_edges(self.m, edges, vwgt=vwgt, ewgt=ewgt)

    def is_internally_connected(self) -> bool:
        """True when every subsystem induces a connected subgraph."""
        pairs = self.net.adjacency_pairs()
        for s in range(self.m):
            comps = subgraph_components(self.net.n_bus, pairs, self.buses(s))
            if len(comps) > 1:
                return False
        return True


# ----------------------------------------------------------------------
def decompose(
    net: Network,
    m: int,
    *,
    seed: int = 0,
    tol: float = 1.05,
    max_fix_rounds: int = 20,
    attempts: int = 4,
) -> Decomposition:
    """Decompose a network into ``m`` balanced, internally connected
    subsystems.

    Two candidate generators are tried over several seeds and the most
    balanced connected result wins:

    - k-way partitioning of the bus graph, followed by a fragment fix-up
      (balanced partitions may strand disconnected fragments) and a
      connectivity-preserving balance pass;
    - BFS region growing from spread-out seed buses, which is connected by
      construction.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    pairs = net.adjacency_pairs()
    adj: list[list[int]] = [[] for _ in range(net.n_bus)]
    for u, v in pairs:
        adj[u].append(int(v))
        adj[v].append(int(u))

    best: np.ndarray | None = None
    best_spread = None
    for k in range(max(1, attempts)):
        for gen in ("kway", "grow"):
            if gen == "kway":
                part = _kway_connected(
                    net, m, pairs, adj, seed=seed + k, tol=tol,
                    max_fix_rounds=max_fix_rounds,
                )
            else:
                part = _grow_regions(net, m, adj, seed=seed + k)
                part = _balance_connected(net, part, m, pairs, adj, tol=tol)
            sizes = np.bincount(part, minlength=m)
            if sizes.min() == 0:
                continue
            dec = Decomposition(net=net, part=part, m=m)
            if not dec.is_internally_connected():
                continue
            spread = int(sizes.max() - sizes.min())
            if best_spread is None or spread < best_spread:
                best, best_spread = part, spread
        if best_spread == 0:
            break
    if best is None:  # pragma: no cover - all attempts failed
        raise RuntimeError(f"could not decompose {net.name} into {m} subsystems")
    return Decomposition(net=net, part=best, m=m)


def _kway_connected(
    net: Network,
    m: int,
    pairs: np.ndarray,
    adj: list[list[int]],
    *,
    seed: int,
    tol: float,
    max_fix_rounds: int,
) -> np.ndarray:
    """k-way partition + fragment adoption + balance pass."""
    g = WeightedGraph.from_edges(net.n_bus, pairs)
    part = partition_kway(g, m, tol=tol, seed=seed).part.copy()

    for _ in range(max_fix_rounds):
        dirty = False
        for s in range(m):
            members = np.flatnonzero(part == s)
            if not members.size:
                continue
            comps = subgraph_components(net.n_bus, pairs, members)
            if len(comps) <= 1:
                continue
            comps.sort(key=len, reverse=True)
            for frag in comps[1:]:
                # adopt the fragment into the most-connected neighbour label
                counts: dict[int, int] = {}
                for v in frag:
                    for u in adj[v]:
                        if part[u] != s:
                            counts[int(part[u])] = counts.get(int(part[u]), 0) + 1
                if counts:
                    target = max(counts, key=counts.get)
                    part[frag] = target
                    dirty = True
        if not dirty:
            break

    return _balance_connected(net, part, m, pairs, adj, tol=tol)


def _grow_regions(
    net: Network,
    m: int,
    adj: list[list[int]],
    *,
    seed: int,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Grow ``m`` connected regions by BFS from spread-out seed buses.

    At each step the region furthest below its target (uniform when
    ``targets`` is None) absorbs one unassigned bus from its frontier, so
    regions stay connected and sizes track the targets.
    """
    rng = np.random.default_rng(seed)
    n = net.n_bus
    part = np.full(n, -1, dtype=np.int64)

    # Seeds: first random, then iteratively the bus farthest (BFS hops)
    # from all chosen seeds.
    seeds = [int(rng.integers(0, n))]
    dist = _bfs_distance(adj, seeds[0], n)
    for _ in range(1, m):
        far = int(np.argmax(dist))
        seeds.append(far)
        dist = np.minimum(dist, _bfs_distance(adj, far, n))

    frontiers: list[set[int]] = []
    for s, b in enumerate(seeds):
        part[b] = s
        frontiers.append({u for u in adj[b] if part[u] == -1})

    sizes = np.ones(m, dtype=np.int64)
    if targets is None:
        targets = np.full(m, n / m)
    assigned = m
    while assigned < n:
        # most-deficient region first (relative to its target)
        order = np.argsort(sizes / np.asarray(targets, dtype=float), kind="stable")
        for s in order:
            frontier = frontiers[s]
            # prune already-assigned buses lazily
            while frontier:
                v = frontier.pop()
                if part[v] == -1:
                    part[v] = s
                    sizes[s] += 1
                    assigned += 1
                    frontier.update(u for u in adj[v] if part[u] == -1)
                    break
            else:
                continue
            break
        else:
            # all frontiers empty but buses remain (disconnected graph):
            # dump leftovers on their own nearest region via any neighbour
            for v in np.flatnonzero(part == -1):
                labels = [part[u] for u in adj[v] if part[u] != -1]
                part[v] = labels[0] if labels else int(np.argmin(sizes))
                sizes[part[v]] += 1
                assigned += 1
    return part


def _bfs_distance(adj: list[list[int]], src: int, n: int) -> np.ndarray:
    from collections import deque

    dist = np.full(n, n + 1, dtype=np.int64)
    dist[src] = 0
    q = deque([src])
    while q:
        v = q.popleft()
        for u in adj[v]:
            if dist[u] > dist[v] + 1:
                dist[u] = dist[v] + 1
                q.append(u)
    return dist


def _balance_connected(
    net: Network,
    part: np.ndarray,
    m: int,
    pairs: np.ndarray,
    adj: list[list[int]],
    *,
    tol: float,
    max_moves: int | None = None,
) -> np.ndarray:
    """Move boundary buses from oversized to smaller adjacent subsystems,
    only accepting moves that keep the donor connected."""
    part = part.copy()
    n = net.n_bus
    limit = int(np.ceil(tol * n / m))
    if max_moves is None:
        max_moves = 4 * n

    for _ in range(max_moves):
        sizes = np.bincount(part, minlength=m)
        donors = np.flatnonzero(sizes > limit)
        if not donors.size:
            break
        donor = int(donors[np.argmax(sizes[donors])])
        members = np.flatnonzero(part == donor)
        # Candidate buses: adjacent to a *smaller* subsystem.
        best = None  # (target_size, bus, target)
        for v in members:
            targets = {int(part[u]) for u in adj[v] if part[u] != donor}
            targets = {t for t in targets if sizes[t] < sizes[donor] - 1}
            if not targets:
                continue
            rest = members[members != v]
            if len(rest) and len(subgraph_components(n, pairs, rest)) > 1:
                continue  # removal would split the donor
            t = min(targets, key=lambda t: sizes[t])
            if best is None or sizes[t] < best[0]:
                best = (sizes[t], int(v), t)
        if best is None:
            break
        _, v, t = best
        part[v] = t
    return part


def decompose_with_sizes(
    net: Network,
    sizes,
    *,
    seed: int = 0,
    attempts: int = 8,
    max_moves: int | None = None,
) -> Decomposition:
    """Decompose into subsystems with the given target bus counts.

    Used to reproduce published decompositions exactly (e.g. the paper's
    9-way IEEE-118 split with sizes 14,13,13,13,13,12,14,13,13).  Regions
    grow by BFS with priority to the most-deficient region, then a
    connectivity-preserving pass moves boundary buses from oversized to
    undersized subsystems.  Raises ``RuntimeError`` if no attempt reaches
    the exact sizes while keeping every subsystem connected.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    m = len(sizes)
    if sizes.sum() != net.n_bus:
        raise ValueError(
            f"target sizes sum to {sizes.sum()}, network has {net.n_bus} buses"
        )
    if np.any(sizes < 1):
        raise ValueError("target sizes must be positive")
    pairs = net.adjacency_pairs()
    adj: list[list[int]] = [[] for _ in range(net.n_bus)]
    for u, v in pairs:
        adj[u].append(int(v))
        adj[v].append(int(u))
    if max_moves is None:
        max_moves = 20 * net.n_bus

    best: np.ndarray | None = None
    best_err = None
    for k in range(attempts):
        part = _grow_regions(net, m, adj, seed=seed + k, targets=sizes)
        part = _move_to_targets(net, part, sizes, pairs, adj, max_moves=max_moves)
        counts = np.bincount(part, minlength=m)
        dec = Decomposition(net=net, part=part, m=m)
        if not dec.is_internally_connected():
            continue
        err = int(np.abs(counts - sizes).sum())
        if best_err is None or err < best_err:
            best, best_err = part, err
        if best_err == 0:
            break
    if best is None or best_err != 0:
        raise RuntimeError(
            f"could not reach target sizes {sizes.tolist()} "
            f"(best residual {best_err})"
        )
    return Decomposition(net=net, part=best, m=m)


def _move_to_targets(
    net: Network,
    part: np.ndarray,
    targets: np.ndarray,
    pairs: np.ndarray,
    adj: list[list[int]],
    *,
    max_moves: int,
) -> np.ndarray:
    """Move boundary buses from over-target to under-target subsystems,
    keeping donors connected."""
    part = part.copy()
    m = len(targets)
    n = net.n_bus
    from collections import deque

    def _shift_one(a: int, b: int) -> bool:
        """Move one boundary bus from subsystem a to adjacent b, keeping a
        connected."""
        members = np.flatnonzero(part == a)
        for v in members:
            if not any(part[u] == b for u in adj[v]):
                continue
            rest = members[members != v]
            if len(rest) and len(subgraph_components(n, pairs, rest)) > 1:
                continue
            part[v] = b
            return True
        return False

    for _ in range(max_moves):
        counts = np.bincount(part, minlength=m)
        surplus = counts - targets
        over = np.flatnonzero(surplus > 0)
        if not over.size:
            break
        # Quotient adjacency on the current partition.
        qadj: list[set[int]] = [set() for _ in range(m)]
        for u, v in pairs:
            a, b = int(part[u]), int(part[v])
            if a != b:
                qadj[a].add(b)
                qadj[b].add(a)
        # BFS from the most-oversized subsystem to any deficient one, then
        # shift one bus along each edge of the path (a diffusion chain).
        src = int(over[np.argmax(surplus[over])])
        prev = {src: -1}
        q = deque([src])
        dest = -1
        while q:
            a = q.popleft()
            if surplus[a] < 0 and a != src:
                dest = a
                break
            for b in qadj[a]:
                if b not in prev:
                    prev[b] = a
                    q.append(b)
        if dest < 0:
            break
        path = [dest]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()  # src ... dest
        progressed = False
        for a, b in zip(path[:-1], path[1:]):
            if not _shift_one(a, b):
                break
            progressed = True
        if not progressed:
            break
    return part


def decompose_by_areas(net: Network) -> Decomposition:
    """Decompose along the case's area labels (balancing authorities)."""
    labels = np.unique(net.area)
    remap = {int(a): i for i, a in enumerate(labels)}
    part = np.array([remap[int(a)] for a in net.area], dtype=np.int64)
    return Decomposition(net=net, part=part, m=len(labels))


# ----------------------------------------------------------------------
def extract_subnetwork(
    net: Network,
    buses: np.ndarray,
    branches: np.ndarray,
    *,
    reference_bus: int | None = None,
    name: str = "subnetwork",
) -> tuple[Network, np.ndarray, np.ndarray]:
    """Induce a standalone :class:`Network` on ``buses`` and ``branches``.

    Parameters
    ----------
    buses:
        Global bus indices to keep (order defines local numbering).
    branches:
        Global branch indices to keep; both endpoints must be in ``buses``.
    reference_bus:
        Global bus index to mark as the local slack; defaults to the first
        bus (a slack is required by the Network invariants even though the
        estimator may use PMU anchoring instead).

    Returns
    -------
    (subnet, bus_map, branch_map):
        ``bus_map[g] = local index`` (-1 where absent); ``branch_map``
        likewise for branches.
    """
    buses = np.asarray(buses, dtype=np.int64)
    branches = np.asarray(branches, dtype=np.int64)
    n = len(buses)
    bus_map = -np.ones(net.n_bus, dtype=np.int64)
    bus_map[buses] = np.arange(n)
    if np.any(bus_map[net.f[branches]] < 0) or np.any(bus_map[net.t[branches]] < 0):
        raise ValueError("branch endpoint outside the subnetwork")

    if reference_bus is None:
        reference_bus = int(buses[0])
    if bus_map[reference_bus] < 0:
        raise ValueError("reference bus not in subnetwork")

    bus_type = net.bus_type[buses].copy()
    # Exactly one local slack.
    bus_type[bus_type == BusType.SLACK] = BusType.PV
    bus_type[bus_map[reference_bus]] = BusType.SLACK

    gsel = np.flatnonzero(bus_map[net.gen_bus] >= 0) if net.n_gen else np.array([], int)

    branch_map = -np.ones(net.n_branch, dtype=np.int64)
    branch_map[branches] = np.arange(len(branches))

    sub = Network(
        base_mva=net.base_mva,
        bus_ids=net.bus_ids[buses].copy(),
        bus_type=bus_type,
        Pd=net.Pd[buses].copy(),
        Qd=net.Qd[buses].copy(),
        Gs=net.Gs[buses].copy(),
        Bs=net.Bs[buses].copy(),
        area=net.area[buses].copy(),
        Vm0=net.Vm0[buses].copy(),
        Va0=net.Va0[buses].copy(),
        base_kv=net.base_kv[buses].copy(),
        f=bus_map[net.f[branches]],
        t=bus_map[net.t[branches]],
        r=net.r[branches].copy(),
        x=net.x[branches].copy(),
        b=net.b[branches].copy(),
        tap=net.tap[branches].copy(),
        shift=net.shift[branches].copy(),
        br_status=net.br_status[branches].copy(),
        gen_bus=bus_map[net.gen_bus[gsel]],
        Pg=net.Pg[gsel].copy(),
        Qg=net.Qg[gsel].copy(),
        Vg=net.Vg[gsel].copy(),
        gen_status=net.gen_status[gsel].copy(),
        name=name,
        _id_to_idx={int(net.bus_ids[b]): k for k, b in enumerate(buses)},
    )
    sub.validate()
    return sub, bus_map, branch_map
