"""Distributed bad-data detection.

One operational advantage of distributing the estimation is *locality*: a
gross error in one subsystem's telemetry fails that subsystem's chi-square
test without contaminating the others, and identification runs on the
small local problem instead of the interconnection-wide one.  This module
runs the standard detection/identification machinery per subsystem on the
DSE Step-1 problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..estimation.baddata import BadDataReport, chi_square_test, identify_bad_data
from ..estimation.wls import WlsEstimator
from ..measurements.types import MeasurementSet
from .decomposition import Decomposition, extract_subnetwork
from .pseudo import assign_measurements, localize_measurements

__all__ = ["SubsystemBadData", "DistributedBadDataReport", "distributed_bad_data"]


@dataclass
class SubsystemBadData:
    """Per-subsystem detection outcome."""

    s: int
    initially_passed: bool
    passes_chi_square: bool
    objective: float
    dof: int
    removed_local_rows: list[int] = field(default_factory=list)
    removed_global_rows: list[int] = field(default_factory=list)


@dataclass
class DistributedBadDataReport:
    """System-wide view of the per-subsystem detections."""

    subsystems: dict[int, SubsystemBadData]

    @property
    def suspect_subsystems(self) -> list[int]:
        """Subsystems whose initial chi-square test failed."""
        return sorted(
            s for s, r in self.subsystems.items() if not r.initially_passed
        )

    @property
    def clean_after_identification(self) -> bool:
        """True when every subsystem passes after removals."""
        return all(r.passes_chi_square for r in self.subsystems.values())

    @property
    def removed_global_rows(self) -> list[int]:
        out: list[int] = []
        for r in self.subsystems.values():
            out.extend(r.removed_global_rows)
        return sorted(out)


def distributed_bad_data(
    dec: Decomposition,
    mset: MeasurementSet,
    *,
    alpha: float = 0.01,
    identify: bool = True,
    solver: str = "lu",
) -> DistributedBadDataReport:
    """Run chi-square detection (and optional LNR identification) on every
    subsystem's Step-1 problem.

    ``removed_global_rows`` refer to rows of the full ``mset``, so the
    caller can build the cleaned system-wide measurement set with
    ``mset.subset(...)``.
    """
    assignment = assign_measurements(dec, mset)
    out: dict[int, SubsystemBadData] = {}

    for s in range(dec.m):
        own = dec.buses(s)
        internal = dec.internal_branches(s)
        subnet, bmap, brmap = extract_subnetwork(
            dec.net, own, internal, reference_bus=int(own[0]), name=f"bd{s}"
        )
        rows = assignment.step1[s]
        local = localize_measurements(mset, rows, bmap, brmap)

        est = WlsEstimator(subnet, local, solver=solver)
        result = est.estimate()
        passes = chi_square_test(result, alpha=alpha)

        rec = SubsystemBadData(
            s=s,
            initially_passed=passes,
            passes_chi_square=passes,
            objective=result.objective,
            dof=result.dof,
        )
        if not passes and identify:
            report: BadDataReport = identify_bad_data(
                subnet, local, alpha=alpha, solver=solver
            )
            rec.removed_local_rows = list(report.removed_rows)
            # Map local row positions back to global mset rows.  The local
            # set preserves the canonical relative order of the selected
            # global rows, so position i in `local` corresponds to the i-th
            # row (in canonical order) of the selection.
            order = _canonical_positions(mset, rows)
            rec.removed_global_rows = sorted(
                int(order[i]) for i in report.removed_rows
            )
            rec.passes_chi_square = report.passes_chi_square
        out[s] = rec

    return DistributedBadDataReport(subsystems=out)


def _canonical_positions(mset: MeasurementSet, rows: np.ndarray) -> np.ndarray:
    """Global row ids ordered as they appear in the localized subset.

    ``localize_measurements`` re-canonicalises; since the selected rows keep
    their relative canonical order and element order is preserved under the
    identity-like bus/branch remapping within a subsystem, the sorted-rows
    order matches the local order.
    """
    return np.sort(np.asarray(rows, dtype=np.int64))
