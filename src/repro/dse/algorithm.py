"""The two-step distributed state estimation algorithm.

Implements the DSE of the paper's section II (after Jiang, Vittal & Heydt):

- **Step 1** — each subsystem runs WLS on its isolated internal network
  using only measurements fully contained in it.
- **Step 2** — each subsystem extends its network with the first layer of
  external boundary buses and tie lines, adds its boundary-related local
  measurements, and re-evaluates with the neighbours' published solutions as
  pseudo measurements.  Step 2 repeats for a finite number of rounds bounded
  by the diameter of the decomposition graph.
- **Final step** — subsystem solutions are concatenated into the
  system-wide estimate.

Per-round per-subsystem records (state sizes, exchanged bytes, solve times)
are exposed so the architecture layer can replay the computation on the
cluster substrate.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..estimation.results import EstimationResult
from ..estimation.wls import WlsEstimator
from ..measurements.types import _TYPE_ORDER, MeasType, MeasurementSet
from ..middleware.message import condensed_update_nbytes, state_update_nbytes
from ..parallel import SubsystemExecutor, make_executor, worker_context
from .condensation import CondensedStep2, neighbor_publication_sets
from .decomposition import Decomposition, extract_subnetwork
from .pseudo import (
    assign_measurements,
    dse_pmu_placement,
    localize_measurements,
    pseudo_measurements,
)
from .sensitivity import exchange_bus_sets

__all__ = ["SubsystemRecord", "DseResult", "DistributedStateEstimator"]

#: bytes per exchanged bus state: (Vm, Va) float64 pair plus a bus id.
BYTES_PER_EXCHANGED_BUS = 2 * 8 + 8

_TYPE_POS = {t: i for i, t in enumerate(_TYPE_ORDER)}


def _localized_perm(
    mset: MeasurementSet,
    rows: np.ndarray,
    bus_map: np.ndarray,
    branch_map: np.ndarray,
) -> np.ndarray:
    """Permutation taking ``mset.z[rows]`` into the canonical order of the
    localized measurement set built from the same rows.

    ``localize_measurements`` re-canonicalises (type buckets in
    ``_TYPE_ORDER``, stable element sort within a bucket), so a values-only
    frame update needs this mapping to scatter fresh ``z`` values into the
    cached local structures without rebuilding them.
    """
    rows = np.asarray(rows, dtype=np.int64)
    tpos, elem_glob, is_bus = mset.column_arrays()
    tidx = tpos[rows]
    eg = elem_glob[rows]
    mask = is_bus[rows]
    elem = np.empty(len(rows), dtype=np.int64)
    # Gather per referent kind: a branch index may exceed len(bus_map)
    # (and vice versa), so the two maps cannot be applied unmasked.
    elem[mask] = bus_map[eg[mask]]
    elem[~mask] = branch_map[eg[~mask]]
    return np.lexsort((elem, tidx))


# ---------------------------------------------------------------------------
# Process-pool worker side: a full (serial) DSE instance lives inside each
# worker process, built once by the pool initializer, so the warm caches —
# subnetworks, Jacobian structures, gain-solver orderings, merged pseudo
# templates — persist across tasks.  Tasks then carry only compact payloads:
# a measurement vector, a warm-start state and a tolerance.
# ---------------------------------------------------------------------------

def _dse_worker_state(payload):
    dec, mset, kwargs = payload
    return DistributedStateEstimator(
        dec, mset, executor=None, auto_anchor=False, **kwargs
    )


@dataclass(frozen=True)
class _SolveFailure:
    """Picklable stand-in result for a per-subsystem solve that raised
    while ``degrade_on_failure`` was active."""

    message: str


def _dse_step1_task(args):
    key, s, z1, x0, tol, octx, degrade = args
    dse = worker_context(key)
    rec = obs.remote_recorder(octx)
    t0 = time.perf_counter()
    with rec.span("dse.step1.subsystem", s=s):
        try:
            res = dse._est1[s].estimate(tol=tol, x0=x0, z=z1)
        except Exception as exc:
            if not degrade:
                raise
            res = _SolveFailure(repr(exc))
    return res, time.perf_counter() - t0, rec.export()


def _dse_step2_task(args):
    key, s, z2, x0_vm, x0_va, tol, octx, degrade, lin = args
    dse = worker_context(key)
    est2 = dse._step2_cache[s][0]
    rec = obs.remote_recorder(octx)
    t0 = time.perf_counter()
    # The linearization point travels with every task (not just the first)
    # because a worker may first touch subsystem ``s`` on any round — the
    # condensed operator must not depend on call history.
    kwargs = {} if lin is None else {"lin_point": lin}
    with rec.span("dse.step2.subsystem", s=s):
        try:
            res = est2.estimate(x0=(x0_vm, x0_va), tol=tol, z=z2, **kwargs)
        except Exception as exc:
            if not degrade:
                raise
            res = _SolveFailure(repr(exc))
    return res, time.perf_counter() - t0, rec.export()


@dataclass
class SubsystemRecord:
    """Per-subsystem execution record for one DSE run."""

    s: int
    n_buses: int
    n_boundary: int
    n_sensitive: int
    step1_result: EstimationResult | None = None
    step2_results: list[EstimationResult] = field(default_factory=list)
    step1_time: float = 0.0
    step2_times: list[float] = field(default_factory=list)
    bytes_sent_per_round: list[int] = field(default_factory=list)
    #: a solve failed and the subsystem fell back to its prior state
    #: (only possible with ``degrade_on_failure=True``)
    degraded: bool = False
    failures: list[str] = field(default_factory=list)
    #: Step 2 ran in condensed (Schur-complement) mode
    condensed: bool = False
    #: states in the condensed boundary block / eliminated interior block
    n_boundary_states: int = 0
    n_interior_states: int = 0
    #: wall time spent condensing the gain operator (in-process executors;
    #: process-pool factorizations happen inside the warm workers)
    factor_time: float = 0.0

    @property
    def exchange_size(self) -> int:
        """Buses this subsystem publishes (boundary + sensitive internal)."""
        return self.n_boundary + self.n_sensitive


@dataclass
class DseResult:
    """System-wide DSE outcome."""

    Vm: np.ndarray
    Va: np.ndarray
    rounds: int
    records: dict[int, SubsystemRecord]
    round_deltas: list[float]
    #: sorted ids of subsystems whose solves fell back to prior state
    degraded_subsystems: list[int] = field(default_factory=list)

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        """RMSE/max error against a reference state (same convention as
        :meth:`repro.estimation.EstimationResult.state_error`)."""
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
            "vm_max": float(np.max(np.abs(self.Vm - Vm_true))),
            "va_max": float(np.max(np.abs(dva))),
        }

    @property
    def total_bytes_exchanged(self) -> int:
        return sum(sum(r.bytes_sent_per_round) for r in self.records.values())


class DistributedStateEstimator:
    """Runs the two-step DSE over a decomposition.

    Parameters
    ----------
    dec:
        The subsystem decomposition.
    mset:
        System-wide measurement snapshot.  If it contains no PMU angles, an
        anchor PMU per subsystem is required for globally consistent angles;
        pass ``auto_anchor=True`` (default) to check and raise otherwise.
    solver:
        Normal-equation solver for every local WLS (``"lu"``, ``"pcg"``,
        ``"lsqr"``).
    sensitivity_threshold:
        Threshold for sensitive-internal-bus identification.
    update_scope:
        ``"exchange"`` (paper-faithful: Step 2 only re-evaluates boundary
        and sensitive internal buses) or ``"all"`` (adopt the whole extended
        solve — an extension).
    auto_anchor:
        Verify every subsystem has at least one synchronized angle channel.
    executor:
        How per-subsystem solves fan out within Step 1 and within each
        Step-2 round: ``None``/``"serial"``, ``"threads"``, an ``int``
        worker count, or a :class:`~repro.parallel.SubsystemExecutor`.
        Results are bit-identical across executors — each round snapshots
        the published state before fanning out and applies updates in
        subsystem order afterwards.
    reuse_structures:
        Cache the extended subnetworks, local estimators (with their
        Jacobian patterns and factorization orderings) and merged
        pseudo-measurement structures across Step-2 rounds and runs,
        instead of rebuilding them every round (the seed behaviour,
        retained as the ``False`` reference path).
    warm_start:
        Start each Step-2 re-evaluation from the subsystem's previous-round
        extended solution (external boundary values refreshed from the
        neighbours' latest publications) rather than from the Step-1
        publication alone.
    degrade_on_failure:
        Off by default (a failed solve raises, the seed behaviour).  When
        on, a per-subsystem solve that raises falls back to the
        subsystem's prior state — flat (or the caller's ``x0``) after a
        Step-1 failure, the previous round's publication after a Step-2
        failure — and the run completes with the subsystem listed in
        ``DseResult.degraded_subsystems`` and the error text on its
        :class:`SubsystemRecord`.
    condense:
        Off by default (full extended re-evaluation, the reference path).
        When on, each subsystem's extended gain matrix is condensed onto
        its boundary buses via a Schur complement
        (:class:`~repro.dse.condensation.CondensedStep2`) — factored once
        per frame topology and reused across rounds and frames — so each
        Step-2 round solves a boundary-sized system and back-substitutes
        interior states locally, and each round exchanges only compact
        per-neighbour boundary blocks (the condensed wire form of
        :mod:`repro.middleware.message`).  Requires
        ``reuse_structures=True``.
    """

    def __init__(
        self,
        dec: Decomposition,
        mset: MeasurementSet,
        *,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        update_scope: str = "exchange",
        auto_anchor: bool = True,
        executor: SubsystemExecutor | str | int | None = None,
        reuse_structures: bool = True,
        warm_start: bool = True,
        degrade_on_failure: bool = False,
        condense: bool = False,
    ):
        if update_scope not in ("exchange", "all"):
            raise ValueError("update_scope must be 'exchange' or 'all'")
        if condense and not reuse_structures:
            raise ValueError(
                "condense=True requires reuse_structures=True (the condensed "
                "operator lives in the per-subsystem caches)"
            )
        self.dec = dec
        self.mset = mset
        self.solver = solver
        self.update_scope = update_scope
        self.sensitivity_threshold = sensitivity_threshold
        self.executor = make_executor(executor)
        self.reuse_structures = reuse_structures
        self.warm_start = warm_start
        self.degrade_on_failure = degrade_on_failure
        self.condense = condense
        self.assignment = assign_measurements(dec, mset)
        self.exchange_sets = exchange_bus_sets(dec, threshold=sensitivity_threshold)
        self._nbr_pub = neighbor_publication_sets(dec) if condense else None
        self._worker_token: str | None = None

        if auto_anchor:
            part = dec.part
            anchored = set()
            for row in mset.rows(MeasType.PMU_VA):
                anchored.add(int(part[mset[int(row)].element]))
            missing = [s for s in range(dec.m) if s not in anchored]
            if missing:
                raise ValueError(
                    f"subsystems {missing} have no synchronized angle "
                    "measurement; add PMUs (see dse_pmu_placement) or pass "
                    "auto_anchor=False"
                )

        self._build_subproblems()

    # ------------------------------------------------------------------
    def _build_subproblems(self) -> None:
        dec = self.dec
        net = dec.net
        self.sub1 = {}
        self.sub2 = {}
        self._est1: dict[int, WlsEstimator] = {}
        self._step2_cache: dict[int, tuple] = {}
        self._z_index: dict[int, tuple] = {}
        for s in range(dec.m):
            own = dec.buses(s)
            internal = dec.internal_branches(s)
            ref = int(own[0])
            subnet1, bmap1, brmap1 = extract_subnetwork(
                net, own, internal, reference_bus=ref, name=f"sub{s}.step1"
            )
            ms1 = localize_measurements(
                self.mset, self.assignment.step1[s], bmap1, brmap1
            )
            self.sub1[s] = (subnet1, bmap1, own, ms1)

            ext = dec.external_boundary_buses(s)
            xbuses = np.concatenate([own, ext])
            xbranches = np.concatenate([internal, dec.incident_tie_lines(s)])
            subnet2, bmap2, brmap2 = extract_subnetwork(
                net, xbuses, xbranches, reference_bus=ref, name=f"sub{s}.step2"
            )
            rows2 = np.concatenate(
                [self.assignment.step1[s], self.assignment.step2_extra[s]]
            )
            ms2 = localize_measurements(self.mset, rows2, bmap2, brmap2)
            self.sub2[s] = (subnet2, bmap2, xbuses, ext, ms2)

            if not self.reuse_structures:
                continue
            # Persistent per-subsystem estimators: Step-2 pseudo
            # measurements have a fixed structure (V/θ pairs at the
            # external boundary buses), so the merged measurement set,
            # the estimator and all of its cached structures are built
            # once and only the pseudo *values* change per round.
            self._est1[s] = WlsEstimator(subnet1, ms1, solver=self.solver)
            ext_local = bmap2[ext]
            pseudo0 = pseudo_measurements(
                ext_local, np.ones(len(ext)), np.zeros(len(ext))
            )
            full0, rows_ms2, rows_pseudo = ms2.merged_with_positions(pseudo0)
            order = np.argsort(ext_local, kind="stable")
            rows_vm = rows_pseudo[pseudo0.rows(MeasType.V_MAG)]
            rows_va = rows_pseudo[pseudo0.rows(MeasType.PMU_VA)]
            src = ext[order]  # global buses aligned with the sorted rows
            est2 = WlsEstimator(subnet2, full0, solver=self.solver)
            if self.condense:
                # Coupling set: own boundary + external boundary buses;
                # everything else is eliminated onto it once per topology.
                bnd_local = bmap2[np.concatenate([dec.boundary_buses(s), ext])]
                est2 = CondensedStep2(est2, bnd_local)
            self._step2_cache[s] = (est2, full0.z, rows_vm, rows_va, src, rows_ms2)
            # Values-only frame support: permutations taking global-row z
            # slices into the canonical order of the localized sets.
            rows1 = self.assignment.step1[s]
            self._z_index[s] = (
                rows1,
                _localized_perm(self.mset, rows1, bmap1, brmap1),
                rows2,
                _localized_perm(self.mset, rows2, bmap2, brmap2),
            )

    # ------------------------------------------------------------------
    # Values-only frames: fresh measurement vectors over the cached
    # structures (same placement, new telemetry values).
    # ------------------------------------------------------------------
    def _step1_z(self, s: int, z_full: np.ndarray) -> np.ndarray:
        """Step-1 local measurement vector for a values-only frame."""
        rows1, perm1, _, _ = self._z_index[s]
        return z_full[rows1][perm1]

    def _step2_meas_z(self, s: int, z_full: np.ndarray) -> np.ndarray:
        """Step-2 measured (non-pseudo) local values for a values-only frame."""
        _, _, rows2, perm2 = self._z_index[s]
        return z_full[rows2][perm2]

    def _step2_inputs(
        self,
        s: int,
        published_vm: np.ndarray,
        published_va: np.ndarray,
        last2: dict,
        z_full: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact Step-2 task inputs ``(z, x0_vm, x0_va)`` for subsystem
        ``s`` — the same arrays regardless of which backend executes the
        solve, which is what pins process-pool results to serial ones."""
        _, z_tmpl, rows_vm, rows_va, src, rows_ms2 = self._step2_cache[s]
        z = z_tmpl.copy()
        if z_full is not None:
            z[rows_ms2] = self._step2_meas_z(s, z_full)
        z[rows_vm] = published_vm[src]
        z[rows_va] = published_va[src]

        _, bmap2, xbuses, ext, _ = self.sub2[s]
        if self.warm_start and s in last2:
            x0_vm, x0_va = last2[s]
            x0_vm, x0_va = x0_vm.copy(), x0_va.copy()
            ext_local = bmap2[ext]
            x0_vm[ext_local] = published_vm[ext]
            x0_va[ext_local] = published_va[ext]
        else:
            x0_vm = published_vm[xbuses]
            x0_va = published_va[xbuses]
        return z, x0_vm, x0_va

    # ------------------------------------------------------------------
    # Process-pool support: worker-resident warm DSE state, keyed by a
    # structural fingerprint so repeated frames over the same case reuse
    # the spawned workers (and their caches) instead of restarting them.
    # ------------------------------------------------------------------
    def _structure_token(self) -> str:
        if self._worker_token is None:
            h = hashlib.sha1()
            h.update(
                pickle.dumps(
                    (
                        self.solver,
                        self.update_scope,
                        float(self.sensitivity_threshold),
                        bool(self.condense),
                    )
                )
            )
            h.update(pickle.dumps(self.dec))
            for t in _TYPE_ORDER:
                h.update(t.value.encode())
                h.update(np.ascontiguousarray(self.mset.elements(t)).tobytes())
            h.update(np.ascontiguousarray(self.mset.sigma).tobytes())
            self._worker_token = "dse:" + h.hexdigest()
        return self._worker_token

    def _ensure_worker_context(self) -> str:
        key = self._structure_token()
        self.executor.initialize(
            key,
            _dse_worker_state,
            (
                self.dec,
                self.mset,
                dict(
                    solver=self.solver,
                    sensitivity_threshold=self.sensitivity_threshold,
                    update_scope=self.update_scope,
                    reuse_structures=True,
                    warm_start=False,
                    condense=self.condense,
                ),
            ),
        )
        return key

    # ------------------------------------------------------------------
    def _round_wire_bytes(self, s: int, rnd: int) -> int:
        """Actual packed payload bytes subsystem ``s`` puts on the wire in
        Step-2 round ``rnd`` — the exact frame sizes the live fabric
        sends (:func:`~repro.middleware.message.pack_state_update` /
        :func:`~repro.middleware.message.pack_condensed_update`), so
        in-process and live-runtime byte accounting agree byte-for-byte.
        """
        if self.condense:
            # Per-neighbour boundary blocks; round 0 carries the bus ids,
            # later rounds are values-only over the cached ordering.
            return sum(
                condensed_update_nbytes(len(ids), values_only=rnd > 0)
                for ids in self._nbr_pub[s].values()
            )
        return state_update_nbytes(len(self.exchange_sets[s])) * len(
            self.dec.neighbors(s)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        rounds: int | None = None,
        tol: float = 1e-8,
        x0: tuple[np.ndarray, np.ndarray] | None = None,
        z: np.ndarray | None = None,
    ) -> DseResult:
        """Execute Step 1, ``rounds`` of Step 2, and the final aggregation.

        ``rounds`` defaults to the decomposition-graph diameter (the paper's
        convergence bound).  ``x0`` optionally warm-starts every local
        Step-1 solve from a previous system state (tracking operation
        between SCADA scans).  ``z`` optionally overrides the system-wide
        measured values (canonical order of the constructor's ``mset``) —
        a values-only frame served over the cached structures, which is how
        the scenario-serving engine pushes repeated estimation rounds
        through one warm estimator; requires ``reuse_structures=True``.
        """
        if not obs.enabled():
            return self._run_impl(rounds=rounds, tol=tol, x0=x0, z=z)
        t0 = time.perf_counter()
        with obs.span("dse.frame", m=self.dec.m) as sp:
            result = self._run_impl(rounds=rounds, tol=tol, x0=x0, z=z)
            sp.set_attr("rounds", result.rounds)
            sp.set_attr("bytes_exchanged", result.total_bytes_exchanged)
        reg = obs.metrics()
        mode = "condensed" if self.condense else "reference"
        reg.counter("dse.frames_total").inc()
        reg.counter("dse.bytes_exchanged_total").inc(result.total_bytes_exchanged)
        reg.counter("dse.exchange_bytes", mode=mode).inc(
            result.total_bytes_exchanged
        )
        solve_hist = reg.histogram("dse.step2.solve.seconds", mode=mode)
        for rec in result.records.values():
            for dt in rec.step2_times:
                solve_hist.observe(dt)
        reg.histogram("dse.frame.seconds").observe(time.perf_counter() - t0)
        return result

    def _run_impl(
        self,
        *,
        rounds: int | None,
        tol: float,
        x0: tuple[np.ndarray, np.ndarray] | None,
        z: np.ndarray | None,
    ) -> DseResult:
        dec = self.dec
        net = dec.net
        if rounds is None:
            rounds = max(1, dec.diameter())
        if z is not None:
            if not self.reuse_structures:
                raise ValueError(
                    "values-only frames (z=) require reuse_structures=True"
                )
            z = np.asarray(z, dtype=float)
            if len(z) != len(self.mset):
                raise ValueError("z override length mismatch")
        use_process = getattr(self.executor, "distributed", False)
        if use_process:
            if not self.reuse_structures:
                raise ValueError(
                    "process-pool execution requires reuse_structures=True "
                    "(workers hold the warm caches)"
                )
            ctx_key = self._ensure_worker_context()

        records = {
            s: SubsystemRecord(
                s=s,
                n_buses=len(dec.buses(s)),
                n_boundary=len(dec.boundary_buses(s)),
                n_sensitive=len(self.exchange_sets[s]) - len(dec.boundary_buses(s)),
            )
            for s in range(dec.m)
        }
        factor_t0: dict[int, float] = {}
        if self.condense:
            for s, rec in records.items():
                cond = self._step2_cache[s][0]
                rec.condensed = True
                rec.n_boundary_states = cond.n_boundary_states
                rec.n_interior_states = cond.n_interior_states
                factor_t0[s] = cond.factor_time

        # Global state estimate, filled per subsystem.
        Vm = np.ones(net.n_bus)
        Va = np.zeros(net.n_bus)

        # ---- DSE Step 1: independent local estimations ----
        with obs.span("dse.step1"):
            octx = obs.pack_current_context()
            if use_process:
                # Compact payloads: the local measurement vector, the local
                # warm start and the tolerance; the estimators live warm
                # inside the workers.
                items1 = []
                for s in range(dec.m):
                    own = dec.buses(s)
                    z1 = self._step1_z(s, z) if z is not None else self.sub1[s][3].z
                    local_x0 = None
                    if x0 is not None:
                        local_x0 = (x0[0][own].copy(), x0[1][own].copy())
                    items1.append(
                        (ctx_key, s, z1, local_x0, tol, octx,
                         self.degrade_on_failure)
                    )
                step1_out = self.executor.map(_dse_step1_task, items1)
            else:
                def step1(s: int):
                    subnet1, _, own, ms1 = self.sub1[s]
                    t0 = time.perf_counter()
                    with obs.span("dse.step1.subsystem", s=s):
                        if self.reuse_structures:
                            est = self._est1[s]
                        else:
                            est = WlsEstimator(
                                subnet1, ms1, solver=self.solver, use_cache=False
                            )
                        local_x0 = None
                        if x0 is not None:
                            local_x0 = (x0[0][own].copy(), x0[1][own].copy())
                        z1 = self._step1_z(s, z) if z is not None else None
                        try:
                            res = est.estimate(tol=tol, x0=local_x0, z=z1)
                        except Exception as exc:
                            if not self.degrade_on_failure:
                                raise
                            res = _SolveFailure(repr(exc))
                    return res, time.perf_counter() - t0, None

                step1_out = self.executor.map(step1, range(dec.m))

            for s, (res, dt, wspans) in enumerate(step1_out):
                if wspans:
                    obs.adopt(wspans)
                own = dec.buses(s)
                records[s].step1_time = dt
                if isinstance(res, _SolveFailure):
                    # degraded: this subsystem publishes its prior state
                    # (the caller's x0 when given, flat otherwise)
                    records[s].degraded = True
                    records[s].failures.append(f"step1: {res.message}")
                    self._count_degraded_solve()
                    if x0 is not None:
                        Vm[own] = x0[0][own]
                        Va[own] = x0[1][own]
                    continue
                records[s].step1_result = res
                Vm[own] = res.Vm
                Va[own] = res.Va

        # Condensed mode: freeze each subsystem's gain operator at the
        # frame's Step-1 publication (restricted to its extended network).
        # The same arrays reach every executor with every Step-2 task, so
        # all rounds of a frame share one factorization and results stay
        # bit-identical between serial, threaded and pooled runs.
        lin_points: dict[int, tuple[np.ndarray, np.ndarray]] | None = None
        if self.condense:
            lin_points = {
                s: (Vm[self.sub2[s][2]].copy(), Va[self.sub2[s][2]].copy())
                for s in range(dec.m)
            }

        # ---- DSE Step 2 rounds: exchange + re-evaluate ----
        # Each round snapshots the published state, fans the per-subsystem
        # re-evaluations out through the executor (they only read the
        # snapshot) and applies the disjoint per-subsystem updates in
        # subsystem order — making serial and parallel execution
        # bit-identical.
        last2: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        round_deltas: list[float] = []
        for rnd in range(rounds):
            with obs.span("dse.exchange", round=rnd):
                published_vm = Vm.copy()
                published_va = Va.copy()

                if self.reuse_structures:
                    # One shared input builder for every backend: identical
                    # (z, x0) arrays go into the cached estimators whether the
                    # solve runs inline, on a thread or in a worker process.
                    inputs = [
                        self._step2_inputs(s, published_vm, published_va, last2, z)
                        for s in range(dec.m)
                    ]

            # Entered manually (closed after the update loop); if a solve
            # raises, the enclosing dse.frame span's exit restores the
            # thread's context, so no token leaks past run().
            step2_span = obs.span("dse.step2", round=rnd)
            step2_span.__enter__()
            octx = obs.pack_current_context()
            if use_process:
                items2 = [
                    (ctx_key, s, inputs[s][0], inputs[s][1], inputs[s][2], tol,
                     octx, self.degrade_on_failure,
                     lin_points[s] if lin_points is not None else None)
                    for s in range(dec.m)
                ]
                results = self.executor.map(_dse_step2_task, items2)
            else:
                def step2(s: int):
                    subnet2, bmap2, xbuses, ext, ms2 = self.sub2[s]
                    with obs.span("dse.step2.subsystem", s=s):
                        if self.reuse_structures:
                            est = self._step2_cache[s][0]
                            z2, x0_vm, x0_va = inputs[s]
                        else:
                            # Reference path: rebuild the pseudo measurements,
                            # the merged set and the estimator from scratch.
                            ext_local = bmap2[ext]
                            pseudo = pseudo_measurements(
                                ext_local, published_vm[ext], published_va[ext]
                            )
                            est = WlsEstimator(
                                subnet2,
                                ms2.merged_with(pseudo),
                                solver=self.solver,
                                use_cache=False,
                            )
                            z2 = None
                            if self.warm_start and s in last2:
                                x0_vm, x0_va = last2[s]
                                x0_vm, x0_va = x0_vm.copy(), x0_va.copy()
                                x0_vm[ext_local] = published_vm[ext]
                                x0_va[ext_local] = published_va[ext]
                            else:
                                x0_vm = published_vm[xbuses]
                                x0_va = published_va[xbuses]

                        kwargs = (
                            {"lin_point": lin_points[s]}
                            if lin_points is not None
                            else {}
                        )
                        t0 = time.perf_counter()
                        try:
                            res = est.estimate(
                                x0=(x0_vm, x0_va), tol=tol, z=z2, **kwargs
                            )
                        except Exception as exc:
                            if not self.degrade_on_failure:
                                raise
                            res = _SolveFailure(repr(exc))
                    return res, time.perf_counter() - t0, None

                results = self.executor.map(step2, range(dec.m))

            delta = 0.0
            for s, (res, dt, wspans) in enumerate(results):
                if wspans:
                    obs.adopt(wspans)
                _, bmap2, xbuses, ext, _ = self.sub2[s]
                rec = records[s]
                rec.step2_times.append(dt)
                if isinstance(res, _SolveFailure):
                    # degraded: keep this subsystem's previous publication
                    # for the round (neighbours keep converging around it)
                    rec.degraded = True
                    rec.failures.append(f"step2 round {rnd}: {res.message}")
                    self._count_degraded_solve()
                    rec.bytes_sent_per_round.append(self._round_wire_bytes(s, rnd))
                    continue
                last2[s] = (res.Vm, res.Va)
                rec.step2_results.append(res)
                rec.bytes_sent_per_round.append(self._round_wire_bytes(s, rnd))

                if self.update_scope == "all":
                    scope = dec.buses(s)
                else:
                    scope = self.exchange_sets[s]
                local = bmap2[scope]
                delta = max(
                    delta,
                    float(np.max(np.abs(res.Vm[local] - Vm[scope]), initial=0.0)),
                    float(np.max(np.abs(res.Va[local] - Va[scope]), initial=0.0)),
                )
                Vm[scope] = res.Vm[local]
                Va[scope] = res.Va[local]
            step2_span.__exit__(None, None, None)
            round_deltas.append(delta)

        if self.condense and not use_process:
            # Condensation cost lives on the warm caches; surface this
            # run's factorization time on the records (worker-side
            # factorizations stay inside the process pool).
            for s, rec in records.items():
                rec.factor_time = (
                    self._step2_cache[s][0].factor_time - factor_t0[s]
                )

        # ---- Final step: solutions already aggregated in (Vm, Va) ----
        return DseResult(
            Vm=Vm, Va=Va, rounds=rounds, records=records,
            round_deltas=round_deltas,
            degraded_subsystems=sorted(
                s for s, rec in records.items() if rec.degraded
            ),
        )

    @staticmethod
    def _count_degraded_solve() -> None:
        if obs.enabled():
            obs.metrics().counter("dse.degraded_solves_total").inc()
