"""The two-step distributed state estimation algorithm.

Implements the DSE of the paper's section II (after Jiang, Vittal & Heydt):

- **Step 1** — each subsystem runs WLS on its isolated internal network
  using only measurements fully contained in it.
- **Step 2** — each subsystem extends its network with the first layer of
  external boundary buses and tie lines, adds its boundary-related local
  measurements, and re-evaluates with the neighbours' published solutions as
  pseudo measurements.  Step 2 repeats for a finite number of rounds bounded
  by the diameter of the decomposition graph.
- **Final step** — subsystem solutions are concatenated into the
  system-wide estimate.

Per-round per-subsystem records (state sizes, exchanged bytes, solve times)
are exposed so the architecture layer can replay the computation on the
cluster substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..estimation.results import EstimationResult
from ..estimation.wls import WlsEstimator
from ..measurements.types import MeasType, MeasurementSet
from ..parallel import SubsystemExecutor, make_executor
from .decomposition import Decomposition, extract_subnetwork
from .pseudo import (
    assign_measurements,
    dse_pmu_placement,
    localize_measurements,
    pseudo_measurements,
)
from .sensitivity import exchange_bus_sets

__all__ = ["SubsystemRecord", "DseResult", "DistributedStateEstimator"]

#: bytes per exchanged bus state: (Vm, Va) float64 pair plus a bus id.
BYTES_PER_EXCHANGED_BUS = 2 * 8 + 8


@dataclass
class SubsystemRecord:
    """Per-subsystem execution record for one DSE run."""

    s: int
    n_buses: int
    n_boundary: int
    n_sensitive: int
    step1_result: EstimationResult | None = None
    step2_results: list[EstimationResult] = field(default_factory=list)
    step1_time: float = 0.0
    step2_times: list[float] = field(default_factory=list)
    bytes_sent_per_round: list[int] = field(default_factory=list)

    @property
    def exchange_size(self) -> int:
        """Buses this subsystem publishes (boundary + sensitive internal)."""
        return self.n_boundary + self.n_sensitive


@dataclass
class DseResult:
    """System-wide DSE outcome."""

    Vm: np.ndarray
    Va: np.ndarray
    rounds: int
    records: dict[int, SubsystemRecord]
    round_deltas: list[float]

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        """RMSE/max error against a reference state (same convention as
        :meth:`repro.estimation.EstimationResult.state_error`)."""
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
            "vm_max": float(np.max(np.abs(self.Vm - Vm_true))),
            "va_max": float(np.max(np.abs(dva))),
        }

    @property
    def total_bytes_exchanged(self) -> int:
        return sum(sum(r.bytes_sent_per_round) for r in self.records.values())


class DistributedStateEstimator:
    """Runs the two-step DSE over a decomposition.

    Parameters
    ----------
    dec:
        The subsystem decomposition.
    mset:
        System-wide measurement snapshot.  If it contains no PMU angles, an
        anchor PMU per subsystem is required for globally consistent angles;
        pass ``auto_anchor=True`` (default) to check and raise otherwise.
    solver:
        Normal-equation solver for every local WLS (``"lu"``, ``"pcg"``,
        ``"lsqr"``).
    sensitivity_threshold:
        Threshold for sensitive-internal-bus identification.
    update_scope:
        ``"exchange"`` (paper-faithful: Step 2 only re-evaluates boundary
        and sensitive internal buses) or ``"all"`` (adopt the whole extended
        solve — an extension).
    auto_anchor:
        Verify every subsystem has at least one synchronized angle channel.
    executor:
        How per-subsystem solves fan out within Step 1 and within each
        Step-2 round: ``None``/``"serial"``, ``"threads"``, an ``int``
        worker count, or a :class:`~repro.parallel.SubsystemExecutor`.
        Results are bit-identical across executors — each round snapshots
        the published state before fanning out and applies updates in
        subsystem order afterwards.
    reuse_structures:
        Cache the extended subnetworks, local estimators (with their
        Jacobian patterns and factorization orderings) and merged
        pseudo-measurement structures across Step-2 rounds and runs,
        instead of rebuilding them every round (the seed behaviour,
        retained as the ``False`` reference path).
    warm_start:
        Start each Step-2 re-evaluation from the subsystem's previous-round
        extended solution (external boundary values refreshed from the
        neighbours' latest publications) rather than from the Step-1
        publication alone.
    """

    def __init__(
        self,
        dec: Decomposition,
        mset: MeasurementSet,
        *,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        update_scope: str = "exchange",
        auto_anchor: bool = True,
        executor: SubsystemExecutor | str | int | None = None,
        reuse_structures: bool = True,
        warm_start: bool = True,
    ):
        if update_scope not in ("exchange", "all"):
            raise ValueError("update_scope must be 'exchange' or 'all'")
        self.dec = dec
        self.mset = mset
        self.solver = solver
        self.update_scope = update_scope
        self.executor = make_executor(executor)
        self.reuse_structures = reuse_structures
        self.warm_start = warm_start
        self.assignment = assign_measurements(dec, mset)
        self.exchange_sets = exchange_bus_sets(dec, threshold=sensitivity_threshold)

        if auto_anchor:
            part = dec.part
            anchored = set()
            for row in mset.rows(MeasType.PMU_VA):
                anchored.add(int(part[mset[int(row)].element]))
            missing = [s for s in range(dec.m) if s not in anchored]
            if missing:
                raise ValueError(
                    f"subsystems {missing} have no synchronized angle "
                    "measurement; add PMUs (see dse_pmu_placement) or pass "
                    "auto_anchor=False"
                )

        self._build_subproblems()

    # ------------------------------------------------------------------
    def _build_subproblems(self) -> None:
        dec = self.dec
        net = dec.net
        self.sub1 = {}
        self.sub2 = {}
        self._est1: dict[int, WlsEstimator] = {}
        self._step2_cache: dict[int, tuple] = {}
        for s in range(dec.m):
            own = dec.buses(s)
            internal = dec.internal_branches(s)
            ref = int(own[0])
            subnet1, bmap1, brmap1 = extract_subnetwork(
                net, own, internal, reference_bus=ref, name=f"sub{s}.step1"
            )
            ms1 = localize_measurements(
                self.mset, self.assignment.step1[s], bmap1, brmap1
            )
            self.sub1[s] = (subnet1, bmap1, own, ms1)

            ext = dec.external_boundary_buses(s)
            xbuses = np.concatenate([own, ext])
            xbranches = np.concatenate([internal, dec.incident_tie_lines(s)])
            subnet2, bmap2, brmap2 = extract_subnetwork(
                net, xbuses, xbranches, reference_bus=ref, name=f"sub{s}.step2"
            )
            rows2 = np.concatenate(
                [self.assignment.step1[s], self.assignment.step2_extra[s]]
            )
            ms2 = localize_measurements(self.mset, rows2, bmap2, brmap2)
            self.sub2[s] = (subnet2, bmap2, xbuses, ext, ms2)

            if not self.reuse_structures:
                continue
            # Persistent per-subsystem estimators: Step-2 pseudo
            # measurements have a fixed structure (V/θ pairs at the
            # external boundary buses), so the merged measurement set,
            # the estimator and all of its cached structures are built
            # once and only the pseudo *values* change per round.
            self._est1[s] = WlsEstimator(subnet1, ms1, solver=self.solver)
            ext_local = bmap2[ext]
            pseudo0 = pseudo_measurements(
                ext_local, np.ones(len(ext)), np.zeros(len(ext))
            )
            full0, _, rows_pseudo = ms2.merged_with_positions(pseudo0)
            order = np.argsort(ext_local, kind="stable")
            rows_vm = rows_pseudo[pseudo0.rows(MeasType.V_MAG)]
            rows_va = rows_pseudo[pseudo0.rows(MeasType.PMU_VA)]
            src = ext[order]  # global buses aligned with the sorted rows
            est2 = WlsEstimator(subnet2, full0, solver=self.solver)
            self._step2_cache[s] = (est2, full0.z, rows_vm, rows_va, src)

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        rounds: int | None = None,
        tol: float = 1e-8,
        x0: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> DseResult:
        """Execute Step 1, ``rounds`` of Step 2, and the final aggregation.

        ``rounds`` defaults to the decomposition-graph diameter (the paper's
        convergence bound).  ``x0`` optionally warm-starts every local
        Step-1 solve from a previous system state (tracking operation
        between SCADA scans).
        """
        dec = self.dec
        net = dec.net
        if rounds is None:
            rounds = max(1, dec.diameter())

        records = {
            s: SubsystemRecord(
                s=s,
                n_buses=len(dec.buses(s)),
                n_boundary=len(dec.boundary_buses(s)),
                n_sensitive=len(self.exchange_sets[s]) - len(dec.boundary_buses(s)),
            )
            for s in range(dec.m)
        }

        # Global state estimate, filled per subsystem.
        Vm = np.ones(net.n_bus)
        Va = np.zeros(net.n_bus)

        # ---- DSE Step 1: independent local estimations ----
        def step1(s: int):
            subnet1, _, own, ms1 = self.sub1[s]
            t0 = time.perf_counter()
            if self.reuse_structures:
                est = self._est1[s]
            else:
                est = WlsEstimator(
                    subnet1, ms1, solver=self.solver, use_cache=False
                )
            local_x0 = None
            if x0 is not None:
                local_x0 = (x0[0][own].copy(), x0[1][own].copy())
            res = est.estimate(tol=tol, x0=local_x0)
            return res, time.perf_counter() - t0

        for s, (res, dt) in enumerate(self.executor.map(step1, range(dec.m))):
            own = dec.buses(s)
            records[s].step1_time = dt
            records[s].step1_result = res
            Vm[own] = res.Vm
            Va[own] = res.Va

        # ---- DSE Step 2 rounds: exchange + re-evaluate ----
        # Each round snapshots the published state, fans the per-subsystem
        # re-evaluations out through the executor (they only read the
        # snapshot) and applies the disjoint per-subsystem updates in
        # subsystem order — making serial and parallel execution
        # bit-identical.
        last2: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        round_deltas: list[float] = []
        for _ in range(rounds):
            published_vm = Vm.copy()
            published_va = Va.copy()

            def step2(s: int):
                subnet2, bmap2, xbuses, ext, ms2 = self.sub2[s]
                if self.reuse_structures:
                    est, z_tmpl, rows_vm, rows_va, src = self._step2_cache[s]
                    z = z_tmpl.copy()
                    z[rows_vm] = published_vm[src]
                    z[rows_va] = published_va[src]
                else:
                    # Reference path: rebuild the pseudo measurements, the
                    # merged set and the estimator from scratch.
                    ext_local = bmap2[ext]
                    pseudo = pseudo_measurements(
                        ext_local, published_vm[ext], published_va[ext]
                    )
                    est = WlsEstimator(
                        subnet2,
                        ms2.merged_with(pseudo),
                        solver=self.solver,
                        use_cache=False,
                    )
                    z = None

                if self.warm_start and s in last2:
                    x0_vm, x0_va = last2[s]
                    x0_vm, x0_va = x0_vm.copy(), x0_va.copy()
                    ext_local = bmap2[ext]
                    x0_vm[ext_local] = published_vm[ext]
                    x0_va[ext_local] = published_va[ext]
                else:
                    x0_vm = published_vm[xbuses]
                    x0_va = published_va[xbuses]

                t0 = time.perf_counter()
                res = est.estimate(x0=(x0_vm, x0_va), tol=tol, z=z)
                return res, time.perf_counter() - t0

            results = self.executor.map(step2, range(dec.m))

            delta = 0.0
            for s, (res, dt) in enumerate(results):
                _, bmap2, xbuses, ext, _ = self.sub2[s]
                last2[s] = (res.Vm, res.Va)
                rec = records[s]
                rec.step2_times.append(dt)
                rec.step2_results.append(res)
                rec.bytes_sent_per_round.append(
                    rec.exchange_size
                    * BYTES_PER_EXCHANGED_BUS
                    * len(dec.neighbors(s))
                )

                if self.update_scope == "all":
                    scope = dec.buses(s)
                else:
                    scope = self.exchange_sets[s]
                local = bmap2[scope]
                delta = max(
                    delta,
                    float(np.max(np.abs(res.Vm[local] - Vm[scope]), initial=0.0)),
                    float(np.max(np.abs(res.Va[local] - Va[scope]), initial=0.0)),
                )
                Vm[scope] = res.Vm[local]
                Va[scope] = res.Va[local]
            round_deltas.append(delta)

        # ---- Final step: solutions already aggregated in (Vm, Va) ----
        return DseResult(
            Vm=Vm, Va=Va, rounds=rounds, records=records, round_deltas=round_deltas
        )
