"""Unit and property tests for AC / DC power flow."""

import numpy as np
import pytest

from repro.grid import (
    PowerFlowError,
    build_ybus,
    run_ac_power_flow,
    run_dc_power_flow,
)
from repro.grid.cases import case4, case4_dict, case14, synthetic_grid
from repro.grid.network import Network


class TestACPowerFlow:
    def test_converges_case14_flat(self, net14):
        r = run_ac_power_flow(net14, flat_start=True)
        assert r.converged
        assert 0 < r.iterations <= 10

    def test_mismatch_below_tolerance(self, pf14):
        assert pf14.max_mismatch < 1e-8

    def test_known_case14_solution(self, pf14, net14):
        """Compare against the published IEEE 14-bus solution."""
        # published Vm at buses 4, 9, 14 (MATPOWER solution values)
        for bid, vm_ref in ((4, 1.018), (9, 1.056), (14, 1.036)):
            assert pf14.Vm[net14.index_of(bid)] == pytest.approx(vm_ref, abs=2e-3)
        # angle at bus 14 about -16.0 degrees
        assert np.rad2deg(pf14.Va[net14.index_of(14)]) == pytest.approx(-16.0, abs=0.3)

    def test_slack_angle_preserved(self, pf14, net14):
        s = net14.slack_buses[0]
        assert pf14.Va[s] == pytest.approx(net14.Va0[s])

    def test_pv_magnitudes_held(self, pf14, net14):
        on = net14.gen_status > 0
        for gb, vg in zip(net14.gen_bus[on], net14.Vg[on]):
            if net14.bus_type[gb] == 2:
                assert pf14.Vm[gb] == pytest.approx(vg)

    def test_injections_match_spec_at_pq(self, pf14, net14):
        P, Q = net14.bus_injections()
        pq = net14.pq_buses
        assert np.allclose(pf14.P[pq], P[pq], atol=1e-7)
        assert np.allclose(pf14.Q[pq], Q[pq], atol=1e-7)

    def test_flow_balance_losses_nonnegative(self, pf118):
        # P loss per branch = Pf + Pt >= 0 for inductive lines
        losses = pf118.Pf + pf118.Pt
        assert np.all(losses > -1e-9)

    def test_total_balance(self, pf118):
        # Sum of injections equals total losses (slack picks up losses).
        losses = (pf118.Pf + pf118.Pt).sum()
        assert pf118.P.sum() == pytest.approx(losses, abs=1e-6)

    def test_branch_flows_match_voltage_solution(self, pf14, net14):
        ybus = build_ybus(net14)
        V = pf14.V
        s = V * np.conj(ybus @ V)
        assert np.allclose(s.real, pf14.P, atol=1e-9)
        assert np.allclose(s.imag, pf14.Q, atol=1e-9)

    def test_nonconvergence_raises(self, net4):
        d = case4_dict()
        d["bus"][2][2] = 5000.0  # 50 p.u. load: infeasible
        net = Network.from_case(d)
        with pytest.raises(PowerFlowError):
            run_ac_power_flow(net, flat_start=True, max_iter=10)

    @pytest.mark.parametrize("seed", range(5))
    def test_synthetic_grids_converge(self, seed):
        net = synthetic_grid(n_areas=5, buses_per_area=20, seed=seed)
        r = run_ac_power_flow(net, flat_start=True)
        assert r.converged
        assert r.Vm.min() > 0.85
        assert r.Vm.max() < 1.1

    def test_warm_start_fewer_or_equal_iters(self, net118):
        cold = run_ac_power_flow(net118, flat_start=True)
        warm = run_ac_power_flow(net118)
        assert warm.iterations <= cold.iterations


class TestDCPowerFlow:
    def test_slack_angle_zero_reference(self, net14):
        r = run_dc_power_flow(net14)
        assert r.Va[net14.slack_buses[0]] == pytest.approx(0.0)

    def test_flat_voltage(self, net14):
        r = run_dc_power_flow(net14)
        assert np.all(r.Vm == 1.0)

    def test_angles_approximate_ac(self, net14):
        ac = run_ac_power_flow(net14)
        dc = run_dc_power_flow(net14)
        # Reference shift: compare angle differences from slack.
        s = net14.slack_buses[0]
        ac_rel = ac.Va - ac.Va[s]
        assert np.allclose(dc.Va, ac_rel, atol=np.deg2rad(4.0))

    def test_injection_conservation(self, net118):
        r = run_dc_power_flow(net118)
        # lossless: injections sum to zero
        assert r.P.sum() == pytest.approx(0.0, abs=1e-9)

    def test_flows_antisymmetric(self, net118):
        r = run_dc_power_flow(net118)
        assert np.allclose(r.Pf, -r.Pt)
        assert np.all(r.Qf == 0)
