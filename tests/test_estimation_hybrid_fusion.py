"""Tests for hybrid SCADA+PMU estimation and PMU window averaging."""

import numpy as np
import pytest

from repro.estimation import EstimationError, estimate_state, hybrid_estimate
from repro.measurements import (
    MeasurementSet,
    Measurement,
    MeasType,
    PmuStream,
    average_pmu_window,
    generate_measurements,
    greedy_pmu_sites,
    pmu_placement,
    scada_placement,
)


@pytest.fixture(scope="module")
def hybrid_setup(net118, pf118):
    rng = np.random.default_rng(0)
    scada = generate_measurements(net118, scada_placement(net118), pf118, rng=rng)
    sites = greedy_pmu_sites(net118)
    pmu = generate_measurements(net118, pmu_placement(net118, sites), pf118, rng=rng)
    return scada, pmu, sites


class TestHybridEstimate:
    def test_absolute_angles_recovered(self, hybrid_setup, net118, pf118):
        """SCADA-only angles have an arbitrary reference; the hybrid fuses
        synchronized phasors and recovers the absolute angles."""
        scada, pmu, _ = hybrid_setup
        hyb = hybrid_estimate(net118, scada, pmu)
        assert np.abs(hyb.Va - pf118.Va).max() < 0.01  # rad, no ref shift

    def test_pmu_buses_tightened(self, hybrid_setup, net118, pf118):
        scada, pmu, sites = hybrid_setup
        base = estimate_state(net118, scada)
        hyb = hybrid_estimate(net118, scada, pmu)
        err_base = np.abs(base.Vm[sites] - pf118.Vm[sites]).mean()
        err_hyb = np.abs(hyb.Vm[sites] - pf118.Vm[sites]).mean()
        assert err_hyb < err_base

    def test_overall_not_worse(self, hybrid_setup, net118, pf118):
        scada, pmu, _ = hybrid_setup
        base = estimate_state(net118, scada).state_error(pf118.Vm, pf118.Va)
        hyb = hybrid_estimate(net118, scada, pmu).state_error(pf118.Vm, pf118.Va)
        assert hyb["vm_rmse"] <= base["vm_rmse"] * 1.02

    def test_requires_phasor_channels(self, hybrid_setup, net118):
        scada, _, _ = hybrid_setup
        flows_only = MeasurementSet(
            [Measurement(MeasType.I_MAG_F, 0, 1.0, 0.01)]
        )
        with pytest.raises(EstimationError, match="PMU_VA"):
            hybrid_estimate(net118, scada, flows_only)

    def test_conditioned_pmu_data_tightens_further(self, net118, pf118):
        """Feeding window-averaged phasors (smaller sigma) pulls the fused
        values closer to the PMU observations."""
        rng = np.random.default_rng(1)
        scada = generate_measurements(
            net118, scada_placement(net118), pf118, rng=rng
        )
        sites = greedy_pmu_sites(net118)
        stream = PmuStream(net118, sites, seed=2)
        window = stream.samples(pf118, 0.0, 30)
        conditioned = average_pmu_window(window)
        single = window[0].mset

        hyb_raw = hybrid_estimate(net118, scada, single)
        hyb_avg = hybrid_estimate(net118, scada, conditioned)
        err_raw = np.abs(hyb_raw.Vm[sites] - pf118.Vm[sites]).mean()
        err_avg = np.abs(hyb_avg.Vm[sites] - pf118.Vm[sites]).mean()
        assert err_avg < err_raw


class TestAveragePmuWindow:
    def test_sigma_shrinks_sqrt_n(self, net14, pf14):
        stream = PmuStream(net14, np.array([0, 3]), seed=0)
        samples = stream.samples(pf14, 0.0, 25)
        avg = average_pmu_window(samples)
        assert avg.sigma[0] == pytest.approx(samples[0].mset.sigma[0] / 5.0)

    def test_mean_of_values(self, net14, pf14):
        stream = PmuStream(net14, np.array([1]), seed=1)
        samples = stream.samples(pf14, 0.0, 10)
        avg = average_pmu_window(samples)
        expect = np.mean([s.mset.z for s in samples], axis=0)
        assert np.allclose(avg.z, expect)

    def test_averaging_reduces_error(self, net14, pf14):
        """The averaged window lands closer to the truth than one sample."""
        from repro.measurements import true_values, pmu_placement

        stream = PmuStream(net14, np.array([0, 5, 9]), seed=3)
        samples = stream.samples(pf14, 0.0, 60)
        truth = true_values(net14, stream.placement, pf14)
        avg_err = np.abs(average_pmu_window(samples).z - truth).mean()
        one_err = np.abs(samples[0].mset.z - truth).mean()
        assert avg_err < one_err

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            average_pmu_window([])

    def test_mismatched_placements_rejected(self, net14, pf14):
        a = PmuStream(net14, np.array([0]), seed=4).samples(pf14, 0.0, 1)
        b = PmuStream(net14, np.array([1]), seed=4).samples(pf14, 0.0, 1)
        with pytest.raises(ValueError, match="differing"):
            average_pmu_window([a[0], b[0]])
