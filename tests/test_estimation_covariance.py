"""Tests for state covariance and confidence intervals."""

import numpy as np
import pytest

from repro.estimation import WlsEstimator, state_covariance
from repro.measurements import full_placement, generate_measurements, pmu_placement


class TestStateCovariance:
    @pytest.fixture(scope="class")
    def cov14(self, net14, pf14):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        est = WlsEstimator(net14, ms)
        res = est.estimate()
        return est, res, state_covariance(est, res)

    def test_shapes(self, cov14, net14):
        _, _, cov = cov14
        assert cov.vm_std.shape == (14,)
        assert cov.va_std.shape == (14,)

    def test_reference_angle_pinned(self, cov14, net14):
        est, _, cov = cov14
        assert cov.reference_bus == net14.slack_buses[0]
        assert cov.va_std[cov.reference_bus] == 0.0

    def test_stds_positive_elsewhere(self, cov14):
        _, _, cov = cov14
        ref = cov.reference_bus
        mask = np.arange(14) != ref
        assert np.all(cov.vm_std > 0)
        assert np.all(cov.va_std[mask] > 0)

    def test_stds_below_meter_sigma(self, cov14):
        """Redundancy: estimated Vm is tighter than a single 0.004 meter."""
        _, _, cov = cov14
        assert np.all(cov.vm_std < 0.004)

    def test_monte_carlo_calibration(self, net118, pf118):
        """Property: predicted stds match the empirical estimator spread."""
        errs = []
        stds = None
        for trial in range(20):
            rng = np.random.default_rng(trial)
            ms = generate_measurements(
                net118, full_placement(net118), pf118, rng=rng
            )
            est = WlsEstimator(net118, ms)
            res = est.estimate()
            if stds is None:
                stds = state_covariance(est, res).vm_std
            errs.append(res.Vm - pf118.Vm)
        emp = np.asarray(errs).std(axis=0)
        ratio = emp / stds
        assert np.median(ratio) == pytest.approx(1.0, abs=0.3)

    def test_confidence_interval_ordering(self, cov14):
        _, res, cov = cov14
        vm_lo, vm_hi, va_lo, va_hi = cov.confidence_interval(res, level=0.95)
        assert np.all(vm_lo <= res.Vm)
        assert np.all(res.Vm <= vm_hi)
        assert np.all(va_lo <= res.Va)

    def test_wider_interval_at_higher_level(self, cov14):
        _, res, cov = cov14
        lo95, hi95, *_ = cov.confidence_interval(res, level=0.95)
        lo99, hi99, *_ = cov.confidence_interval(res, level=0.99)
        assert np.all(hi99 - lo99 >= hi95 - lo95)

    def test_level_validated(self, cov14):
        _, res, cov = cov14
        with pytest.raises(ValueError):
            cov.confidence_interval(res, level=1.5)

    def test_pmu_anchors_remove_reference_pin(self, net14, pf14):
        rng = np.random.default_rng(1)
        plac = full_placement(net14).merged_with(pmu_placement(net14))
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        est = WlsEstimator(net14, ms)
        res = est.estimate()
        cov = state_covariance(est, res)
        assert cov.reference_bus is None
        assert np.all(cov.va_std > 0)

    def test_more_measurements_tighter(self, net14, pf14):
        """Adding channels can only shrink (or hold) the variances."""
        rng = np.random.default_rng(2)
        full = full_placement(net14)
        ms_full = generate_measurements(net14, full, pf14, rng=rng)
        est_full = WlsEstimator(net14, ms_full)
        cov_full = state_covariance(est_full, est_full.estimate())

        half = ms_full.subset(np.arange(0, len(ms_full), 2))
        est_half = WlsEstimator(net14, half)
        cov_half = state_covariance(est_half, est_half.estimate())
        assert cov_full.vm_std.mean() < cov_half.vm_std.mean()
