"""Tests for report rendering."""

import io

import numpy as np
import pytest

from repro.core.telemetry import FrameReport, PhaseBreakdown
from repro.reporting import (
    format_table,
    frame_table,
    session_summary,
    write_frames_csv,
)


def _fake_report(t=0.0, vm=1e-3):
    return FrameReport(
        t=t,
        noise_level=1.2,
        expected_iterations=9.8,
        mapping_step1={"a": [0, 1]},
        imbalance_step1=1.04,
        mapping_step2={"a": [0, 1]},
        imbalance_step2=1.06,
        edge_cut_step2=50,
        migrated_weight=3,
        rounds=2,
        bytes_exchanged=1024,
        timings=PhaseBreakdown(step1=0.01, redistribution=0.001,
                               exchange_per_round=[0.002, 0.002],
                               step2_per_round=[0.01, 0.01]),
        wall_time=0.5,
        vm_rmse_vs_truth=vm,
    )


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all lines equal width
        assert len({len(l) for l in lines}) == 1

    def test_header_included(self):
        out = format_table(["col"], [[42]])
        assert "col" in out
        assert "42" in out

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_format(self):
        out = format_table(["x"], [[0.123456789]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_bool_not_float_formatted(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out


class TestFrameTable:
    def test_contains_core_columns(self):
        out = frame_table([_fake_report(), _fake_report(t=4.0)])
        assert "noise x" in out
        assert "Vm RMSE" in out
        assert out.count("\n") == 3  # header + rule + 2 rows

    def test_missing_truth_renders_dash(self):
        rep = _fake_report()
        rep.vm_rmse_vs_truth = None
        out = frame_table([rep])
        assert out.splitlines()[-1].rstrip().endswith("-")


class TestSessionSummary:
    def test_aggregates(self):
        reports = [_fake_report(t=0.0), _fake_report(t=4.0)]
        s = session_summary(reports)
        assert s["frames"] == 2
        assert s["total_bytes"] == 2048
        assert s["mean_sim_total"] == pytest.approx(0.035)
        assert s["total_migrated_weight"] == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            session_summary([])


class TestCsv:
    def test_stream_write(self):
        buf = io.StringIO()
        write_frames_csv([_fake_report()], buf)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("t,")

    def test_file_write(self, tmp_path):
        path = tmp_path / "frames.csv"
        write_frames_csv([_fake_report(), _fake_report(t=4.0)], path)
        content = path.read_text().strip().splitlines()
        assert len(content) == 3

    def test_end_to_end_with_session(self, tmp_path):
        from repro.core import ArchitecturePrototype, DseSession
        from repro.dse import dse_pmu_placement
        from repro.grid import run_ac_power_flow
        from repro.grid.cases import synthetic_grid
        from repro.measurements import full_placement, generate_measurements

        net = synthetic_grid(n_areas=3, buses_per_area=8, seed=0)
        pf = run_ac_power_flow(net, flat_start=True)
        with ArchitecturePrototype.assemble(net, m_subsystems=3, seed=0) as arch:
            plac = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
            ms = generate_measurements(
                net, plac, pf, rng=np.random.default_rng(0)
            )
            session = DseSession(arch)
            session.process_frame(ms, truth=(pf.Vm, pf.Va))
            out = frame_table(session.reports)
            assert "sim total" in out
            write_frames_csv(session.reports, tmp_path / "s.csv")
            assert (tmp_path / "s.csv").exists()
