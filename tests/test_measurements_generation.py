"""Tests for placement plans, noisy generation, SCADA and PMU streams."""

import numpy as np
import pytest

from repro.grid import run_ac_power_flow
from repro.measurements import (
    MeasType,
    NoiseProcess,
    PmuStream,
    ScadaSystem,
    full_placement,
    generate_measurements,
    greedy_pmu_sites,
    inject_bad_data,
    pmu_placement,
    pmu_storage_bytes,
    scada_placement,
    true_values,
)


class TestPlacements:
    def test_full_placement_counts(self, net14):
        plac = full_placement(net14)
        # 3 per bus + 4 per live branch
        assert len(plac) == 3 * 14 + 4 * 20

    def test_scada_placement_has_all_injections(self, net118):
        plac = scada_placement(net118)
        assert plac.count(MeasType.P_INJ) == 118
        assert plac.count(MeasType.Q_INJ) == 118

    def test_scada_flow_fraction(self, net118):
        plac = scada_placement(net118, flow_fraction=0.5, seed=1)
        assert plac.count(MeasType.P_FLOW_F) == round(0.5 * 186)

    def test_scada_flow_fraction_validated(self, net14):
        with pytest.raises(ValueError):
            scada_placement(net14, flow_fraction=1.5)

    def test_scada_deterministic_by_seed(self, net118):
        a = scada_placement(net118, seed=3)
        b = scada_placement(net118, seed=3)
        assert np.array_equal(
            a.elements(MeasType.P_FLOW_F), b.elements(MeasType.P_FLOW_F)
        )

    def test_greedy_pmu_sites_dominate(self, net118):
        sites = greedy_pmu_sites(net118)
        covered = set(sites.tolist())
        for u, v in net118.adjacency_pairs():
            if u in covered:
                covered.add(int(v))
            if v in covered:
                covered.add(int(u))
        # every bus adjacent to (or hosting) a PMU
        pairs = net118.adjacency_pairs()
        cover = set(sites.tolist())
        for u, v in pairs:
            if int(u) in set(sites.tolist()):
                cover.add(int(v))
            if int(v) in set(sites.tolist()):
                cover.add(int(u))
        assert cover == set(range(118))

    def test_pmu_placement_channels(self, net14):
        sites = np.array([1, 5])
        plac = pmu_placement(net14, sites)
        assert plac.count(MeasType.PMU_VA) == 2
        assert plac.count(MeasType.V_MAG) == 2
        # current channels only on branches leaving a PMU bus (from side)
        for k in plac.elements(MeasType.I_MAG_F):
            assert net14.f[k] in (1, 5)


class TestGeneration:
    def test_zero_noise_equals_truth(self, net14, pf14, rng):
        plac = full_placement(net14)
        ms = generate_measurements(net14, plac, pf14, noise_level=0.0, rng=rng)
        assert np.allclose(ms.z, true_values(net14, plac, pf14))

    def test_noise_scales_with_level(self, net14, pf14):
        plac = full_placement(net14)
        h0 = true_values(net14, plac, pf14)
        devs = []
        for lvl in (0.5, 4.0):
            r = np.random.default_rng(7)
            ms = generate_measurements(net14, plac, pf14, noise_level=lvl, rng=r)
            devs.append(np.std((ms.z - h0) / plac.sigma))
        assert devs[1] / devs[0] == pytest.approx(8.0, rel=0.01)

    def test_negative_level_rejected(self, net14, pf14):
        with pytest.raises(ValueError):
            generate_measurements(net14, full_placement(net14), pf14, noise_level=-1)

    def test_noise_statistics(self, net118, pf118):
        """Property: standardized errors are ~N(0,1) over many channels."""
        plac = full_placement(net118)
        h0 = true_values(net118, plac, pf118)
        ms = generate_measurements(
            net118, plac, pf118, rng=np.random.default_rng(0)
        )
        zstd = (ms.z - h0) / plac.sigma
        assert abs(zstd.mean()) < 0.1
        assert abs(zstd.std() - 1.0) < 0.1

    def test_inject_bad_data_rows(self, net14, pf14, rng):
        plac = full_placement(net14)
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        bad = inject_bad_data(ms, np.array([4]), magnitude_sigmas=25, rng=rng)
        delta = np.abs(bad.z - ms.z)
        assert delta[4] == pytest.approx(25 * ms.sigma[4])
        delta[4] = 0
        assert np.all(delta == 0)


class TestScadaSystem:
    def test_frames_are_sequential(self, net14):
        sc = ScadaSystem(net14, scada_placement(net14), seed=0)
        frames = sc.frames(3)
        assert [f.t for f in frames] == [0.0, 4.0, 8.0]

    def test_scan_period_respected(self, net14):
        sc = ScadaSystem(net14, scada_placement(net14), scan_period=2.0, seed=0)
        frames = sc.frames(2)
        assert frames[1].t - frames[0].t == 2.0

    def test_invalid_period(self, net14):
        with pytest.raises(ValueError):
            ScadaSystem(net14, scada_placement(net14), scan_period=0)

    def test_load_drift_changes_operating_point(self, net14):
        sc = ScadaSystem(net14, scada_placement(net14), load_walk_sigma=0.05, seed=1)
        frames = sc.frames(4)
        p0 = frames[0].pf.P.sum()
        assert any(abs(f.pf.P.sum() - p0) > 1e-6 for f in frames[1:])

    def test_noise_levels_positive(self, net14):
        sc = ScadaSystem(net14, scada_placement(net14), seed=2)
        frames = sc.frames(10)
        assert all(f.noise_level > 0 for f in frames)

    def test_reproducible_with_seed(self, net14):
        a = ScadaSystem(net14, scada_placement(net14), seed=9).frames(3)
        b = ScadaSystem(net14, scada_placement(net14), seed=9).frames(3)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.mset.z, fb.mset.z)


class TestNoiseProcess:
    def test_mean_reversion(self):
        rng = np.random.default_rng(0)
        proc = NoiseProcess(mean=1.0, theta=0.5, sigma=0.01)
        proc._x = 5.0
        for _ in range(50):
            proc.step(rng)
        assert abs(proc.level - 1.0) < 0.2

    def test_floor_enforced(self):
        rng = np.random.default_rng(0)
        proc = NoiseProcess(mean=0.0, theta=0.9, sigma=0.0, floor=0.05)
        for _ in range(10):
            proc.step(rng)
        assert proc.level >= 0.05

    def test_theta_validated(self):
        with pytest.raises(ValueError):
            NoiseProcess(theta=0.0)


class TestPmuStream:
    def test_sample_timing(self, net14, pf14):
        stream = PmuStream(net14, np.array([0, 4]), rate_hz=30.0, seed=0)
        samples = stream.samples(pf14, t0=10.0, n=3)
        assert samples[0].t == 10.0
        assert samples[1].t == pytest.approx(10.0 + 1 / 30)

    def test_rate_validated(self, net14):
        with pytest.raises(ValueError):
            PmuStream(net14, rate_hz=0)

    def test_default_sites_observable_cover(self, net14):
        stream = PmuStream(net14)
        assert stream.n_sites >= 1

    def test_storage_estimate_matches_paper_scale(self):
        # ~300 PMUs for 30 days lands near the paper's ~1.12 TB figure.
        tb = pmu_storage_bytes(300, 30) / 1e12
        assert 0.5 < tb < 2.5

    def test_storage_validation(self):
        with pytest.raises(ValueError):
            pmu_storage_bytes(-1, 1)
