"""Unit tests for measurement types and containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurements import DEFAULT_SIGMAS, Measurement, MeasType, MeasurementSet


def _m(t, el, v=0.0, s=0.01):
    return Measurement(t, el, v, s)


class TestMeasurement:
    def test_requires_positive_sigma(self):
        with pytest.raises(ValueError):
            Measurement(MeasType.V_MAG, 0, 1.0, 0.0)

    def test_requires_nonnegative_element(self):
        with pytest.raises(ValueError):
            Measurement(MeasType.V_MAG, -1, 1.0, 0.01)

    def test_bus_branch_classification(self):
        assert MeasType.V_MAG.is_bus
        assert MeasType.PMU_VA.is_bus
        assert MeasType.P_FLOW_F.is_branch
        assert not MeasType.P_INJ.is_branch

    def test_default_sigmas_cover_all_types(self):
        assert set(DEFAULT_SIGMAS) == set(MeasType)


class TestMeasurementSet:
    def test_canonical_order_types_then_elements(self):
        ms = MeasurementSet(
            [
                _m(MeasType.P_FLOW_F, 3),
                _m(MeasType.V_MAG, 5),
                _m(MeasType.V_MAG, 1),
                _m(MeasType.P_INJ, 0),
            ]
        )
        kinds = [m.mtype for m in ms]
        assert kinds == [
            MeasType.V_MAG,
            MeasType.V_MAG,
            MeasType.P_INJ,
            MeasType.P_FLOW_F,
        ]
        assert ms.elements(MeasType.V_MAG).tolist() == [1, 5]

    def test_rows_match_iteration_order(self):
        ms = MeasurementSet(
            [_m(MeasType.Q_INJ, 2, v=7.0), _m(MeasType.V_MAG, 0, v=1.0)]
        )
        assert ms.z[ms.rows(MeasType.V_MAG)[0]] == 1.0
        assert ms.z[ms.rows(MeasType.Q_INJ)[0]] == 7.0

    def test_duplicates_preserved(self):
        ms = MeasurementSet([_m(MeasType.V_MAG, 2), _m(MeasType.V_MAG, 2)])
        assert len(ms) == 2
        assert ms.count(MeasType.V_MAG) == 2

    def test_weights_are_inverse_variance(self):
        ms = MeasurementSet([_m(MeasType.V_MAG, 0, s=0.1)])
        assert ms.weights[0] == pytest.approx(100.0)

    def test_with_values_roundtrip(self):
        ms = MeasurementSet([_m(MeasType.V_MAG, 0), _m(MeasType.P_INJ, 1)])
        ms2 = ms.with_values(np.array([1.5, -0.5]))
        assert ms2.z.tolist() == [1.5, -0.5]
        assert len(ms2) == 2

    def test_with_values_length_check(self):
        ms = MeasurementSet([_m(MeasType.V_MAG, 0)])
        with pytest.raises(ValueError):
            ms.with_values(np.zeros(3))

    def test_subset_boolean_and_index(self):
        ms = MeasurementSet(
            [_m(MeasType.V_MAG, i, v=float(i)) for i in range(5)]
        )
        sub = ms.subset(np.array([True, False, True, False, False]))
        assert sub.z.tolist() == [0.0, 2.0]
        sub2 = ms.subset(np.array([3, 4]))
        assert sub2.z.tolist() == [3.0, 4.0]

    def test_merged_with(self):
        a = MeasurementSet([_m(MeasType.V_MAG, 0)])
        b = MeasurementSet([_m(MeasType.P_INJ, 1)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.count(MeasType.P_INJ) == 1

    def test_empty_set(self):
        ms = MeasurementSet([])
        assert len(ms) == 0
        assert ms.z.shape == (0,)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(MeasType)),
                st.integers(min_value=0, max_value=30),
                st.floats(-10, 10, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_canonical_order_is_idempotent(self, raw):
        """Property: re-canonicalising a canonical set changes nothing."""
        ms = MeasurementSet([_m(t, e, v) for t, e, v in raw])
        ms2 = MeasurementSet(list(ms))
        assert np.array_equal(ms.z, ms2.z)
        assert [m.mtype for m in ms] == [m.mtype for m in ms2]
        assert [m.element for m in ms] == [m.element for m in ms2]
