"""Self-healing DSE: checkpoints, leases, epoch fencing, failover.

Contracts under test:

- :class:`SubsystemCheckpoint` round-trips its compact wire form
  bit-exactly (float64 both ways), and rejects corrupt payloads typed;
- :class:`MembershipView` leases are monotonic, round-based and expire
  deterministically; loss bumps the cluster epoch exactly once;
- :class:`RecoveryCoordinator` promotes a lost site's subsystems onto
  the first live hash-ring successor holding a replica, hands each
  promotion out exactly once, and fences zombie frames;
- the mux fast path diverts ``FLAG_CHECKPOINT`` frames into sinks and
  drops epoch-fenced frames at the hub (both transports);
- a TCP re-dial under the same site id atomically retires the stale
  registration; an inproc re-attach revives a fault-disconnected id;
- the live runtime under a seeded site-kill degrades for a bounded
  number of rounds, recovers the lost subsystem on a successor site,
  converges back to the uninterrupted run's state, and replays the
  fault plan bit-for-bit — and with recovery off nothing changes.
"""

import threading
import time

import numpy as np
import pytest

from repro import faults, obs
from repro.cluster.recovery import (
    CKPT_VERSION,
    HEARTBEAT_SUBSYSTEM,
    MembershipView,
    RecoveryConfig,
    RecoveryCoordinator,
    SubsystemCheckpoint,
    heartbeat_payload,
)
from repro.core import ArchitecturePrototype, DseSession, LiveDseRuntime
from repro.core.runtime import DEGRADED_ROUNDS_RETAINED, LiveSiteStats
from repro.core.telemetry import FrameReport
from repro.dse import decompose, dse_pmu_placement
from repro.dse.condensation import CondensedStep2
from repro.estimation import WlsEstimator
from repro.faults import FaultInjector, FaultPlan
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, synthetic_grid
from repro.measurements import full_placement, generate_measurements
from repro.middleware import ConsistentHashRing, MiddlewareFabric
from repro.middleware.fastpath import InprocMuxRouter, MuxRouter
from repro.middleware.message import FLAG_EPOCH, FrameError


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.uninstall()
    yield
    faults.uninstall()


def _ckpt(sub=3, site=1, epoch=2, rnd=5, n_own=4, n_ext=7, warm=True, lin=True):
    rng = np.random.default_rng(abs(sub) + abs(rnd))
    return SubsystemCheckpoint(
        subsystem=sub,
        site=site,
        epoch=epoch,
        round=rnd,
        own_ids=np.arange(10, 10 + n_own, dtype=np.int64),
        own_vm=rng.uniform(0.9, 1.1, n_own),
        own_va=rng.uniform(-0.5, 0.5, n_own),
        warm_vm=rng.uniform(0.9, 1.1, n_ext) if warm else None,
        warm_va=rng.uniform(-0.5, 0.5, n_ext) if warm else None,
        lin_vm=rng.uniform(0.9, 1.1, n_ext) if lin else None,
        lin_va=rng.uniform(-0.5, 0.5, n_ext) if lin else None,
    )


# ---------------------------------------------------------------------------
# Checkpoint wire form
# ---------------------------------------------------------------------------

class TestCheckpointCodec:
    @pytest.mark.parametrize("warm,lin", [(True, True), (True, False),
                                          (False, True), (False, False)])
    def test_roundtrip_bit_exact(self, warm, lin):
        ck = _ckpt(warm=warm, lin=lin)
        pay = ck.to_payload()
        assert len(pay) == ck.nbytes
        back = SubsystemCheckpoint.from_payload(pay)
        assert (back.subsystem, back.site, back.epoch, back.round) == (
            ck.subsystem, ck.site, ck.epoch, ck.round
        )
        assert back.own_ids.tolist() == ck.own_ids.tolist()
        # bit-exact float64: the restored lin_point must hit the donor's
        # factorisation cache, so approx equality is not good enough
        assert np.array_equal(back.own_vm, ck.own_vm)
        assert np.array_equal(back.own_va, ck.own_va)
        for a, b in ((back.warm_vm, ck.warm_vm), (back.warm_va, ck.warm_va),
                     (back.lin_vm, ck.lin_vm), (back.lin_va, ck.lin_va)):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)

    def test_bootstrap_seed_round_survives(self):
        back = SubsystemCheckpoint.from_payload(_ckpt(rnd=-1).to_payload())
        assert back.round == -1

    def test_truncated_payload_rejected(self):
        pay = _ckpt().to_payload()
        with pytest.raises(FrameError, match="length mismatch"):
            SubsystemCheckpoint.from_payload(pay[:-8])
        with pytest.raises(FrameError, match="short checkpoint"):
            SubsystemCheckpoint.from_payload(pay[:4])

    def test_wrong_version_rejected(self):
        pay = bytearray(_ckpt().to_payload())
        pay[0] = CKPT_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            SubsystemCheckpoint.from_payload(bytes(pay))

    def test_heartbeat_is_header_only(self):
        pay = heartbeat_payload(4, 7, 12)
        hb = SubsystemCheckpoint.from_payload(pay)
        assert hb.subsystem == HEARTBEAT_SUBSYSTEM
        assert (hb.site, hb.epoch, hb.round) == (4, 7, 12)
        assert len(hb.own_ids) == 0 and hb.warm_vm is None


# ---------------------------------------------------------------------------
# Membership / leases
# ---------------------------------------------------------------------------

class TestMembershipView:
    def test_beat_is_monotonic(self):
        mv = MembershipView(["a", "b"])
        mv.beat("a", 5)
        mv.beat("a", 3)  # a stale replica must never rewind a lease
        assert mv.last_seen("a") == 5
        mv.beat("zz", 9)  # unknown sites are ignored
        assert mv.last_seen("zz") == -1

    def test_expiry_is_round_arithmetic(self):
        mv = MembershipView(["a", "b", "c"])
        mv.beat("a", 4)
        mv.beat("b", 2)
        assert mv.expired(5, 2) == ["b", "c"]
        assert mv.expired(5, 10) == []

    def test_loss_bumps_epoch_exactly_once(self):
        mv = MembershipView(["a", "b"])
        assert mv.epoch == 0
        assert mv.declare_lost("a") == 1
        assert mv.declare_lost("a") == 1  # idempotent
        assert mv.declare_lost("b") == 2
        assert mv.is_lost("a") and mv.live() == []

    def test_lost_site_never_reexpires(self):
        mv = MembershipView(["a", "b"])
        mv.declare_lost("a")
        assert mv.expired(100, 1) == ["b"]


# ---------------------------------------------------------------------------
# Coordinator: scan, promotion, fencing
# ---------------------------------------------------------------------------

def _coord(**cfg):
    sites = {"se0": 0, "se1": 1, "se2": 2}
    hosted = {"se0": [0], "se1": [1], "se2": [2]}
    return RecoveryCoordinator(
        sites, hosted, config=RecoveryConfig(**cfg) if cfg else None
    )


class TestRecoveryCoordinator:
    def test_promotion_from_replica(self):
        coord = _coord(lease_rounds=2)
        # everyone seeds (round -1) and beats through round 1 — except se1
        for s in range(3):
            succ = coord.successor(s)
            coord.ingest(succ, _ckpt(sub=s, site=s, rnd=-1).to_payload())
        for r in (0, 1, 2):
            for name, i in (("se0", 0), ("se2", 2)):
                coord.ingest("se0", heartbeat_payload(i, 0, r))
        promos = {}
        for name in ("se0", "se1", "se2"):
            promos[name] = coord.begin_round(name, 3)
        assert coord.lost_sites == ["se1"]
        assert coord.epoch == 1
        assert list(coord.recovered) == [1]
        promoted_to = [n for n, p in promos.items() if p]
        assert promoted_to == [coord.site_of(1)]
        (ck,) = promos[promoted_to[0]]
        assert ck.subsystem == 1 and ck.round == -1
        # the promotion is handed out exactly once
        assert coord.begin_round(promoted_to[0], 3) == []

    def test_unrecoverable_without_replica(self):
        coord = _coord(lease_rounds=1)
        for r in (0, 1):
            coord.ingest("se2", heartbeat_payload(0, 0, r))
            coord.ingest("se2", heartbeat_payload(2, 0, r))
        coord.begin_round("se0", 2)
        assert coord.lost_sites == ["se1"]
        assert coord.unrecoverable == [1]
        assert coord.recovered == {}
        # ownership does not move: the zombie keeps solving as before
        assert coord.site_of(1) == "se1"

    def test_scan_runs_once_per_round(self):
        coord = _coord(lease_rounds=1)
        coord.begin_round("se0", 5)
        epoch_after = coord.epoch
        coord.begin_round("se1", 5)
        coord.begin_round("se2", 5)
        assert coord.epoch == epoch_after  # no double-declare

    def test_fence_verdicts(self):
        coord = _coord(lease_rounds=1)
        coord.ingest("se1", heartbeat_payload(0, 0, 1))
        coord.begin_round("se0", 2)  # se1, se2 silent -> lost
        assert coord.fence(0, coord.epoch) is True
        assert coord.fence(1, coord.epoch) is False  # zombie, even w/ epoch
        assert coord.fence(99, 0) is True  # unknown ids are not our business

    def test_ingest_tolerates_garbage_and_lost_senders(self):
        coord = _coord()
        coord.ingest("se0", b"not a checkpoint")  # silently ignored
        coord.begin_round("se0", 99)  # everyone lost
        before = coord.snapshot()
        coord.ingest("se0", _ckpt(sub=1, site=1, rnd=100).to_payload())
        assert coord.snapshot() == before  # zombie replicas are dropped

    def test_heartbeat_renews_lease_without_storing_replica(self):
        coord = _coord(lease_rounds=1)
        for r in range(4):
            for i in (0, 1, 2):
                coord.ingest("se0", heartbeat_payload(i, 0, r))
        coord.begin_round("se0", 4)
        assert coord.lost_sites == []
        assert coord._replicas["se0"] == {}


# ---------------------------------------------------------------------------
# Mux recovery plane: checkpoint sinks + epoch fence, both transports
# ---------------------------------------------------------------------------

class TestCheckpointPlane:
    @pytest.mark.parametrize("use_tcp", [False, True])
    def test_checkpoint_diverted_to_sink(self, use_tcp):
        got = []
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b")], use_tcp=use_tcp, fast=True
        ) as fab:
            fab.set_checkpoint_sink("b", got.append)
            fab.send_checkpoint("a", "b", b"replica-bytes", epoch=3)
            deadline = time.time() + 2
            while not got:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("checkpoint never reached the sink")
                time.sleep(0.01)
            # epoch prefix is stripped; the ordinary queue stays empty
            assert bytes(got[0]) == b"replica-bytes"
            with pytest.raises(TimeoutError):
                fab.recv("b", timeout=0.1)

    def test_checkpoint_needs_fast_plane(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")]) as fab:
            with pytest.raises(RuntimeError, match="fast plane"):
                fab.send_checkpoint("a", "b", b"x")
            with pytest.raises(RuntimeError, match="fast plane"):
                fab.set_checkpoint_sink("b", lambda p: None)

    def test_sink_exception_does_not_kill_plane(self):
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b"), ("b", "a")], fast=True
        ) as fab:
            fab.set_checkpoint_sink("b", lambda p: 1 / 0)
            fab.send_checkpoint("a", "b", b"boom")
            fab.send("a", "b", b"data still flows")
            assert bytes(fab.recv("b", timeout=2)) == b"data still flows"


class TestEpochFence:
    @pytest.mark.parametrize("use_tcp", [False, True])
    def test_fenced_frames_dropped_at_hub(self, use_tcp):
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b")], use_tcp=use_tcp, fast=True
        ) as fab:
            a_id = fab.site_id("a")
            fab.set_epoch_fence(lambda src, epoch: not (
                src == a_id and epoch < 5
            ))
            fab.send_many("a", [("b", b"stale")], epoch=4)
            fab.send_many("a", [("b", b"fresh")], epoch=5)
            assert bytes(fab.recv("b", timeout=2)) == b"fresh"
            deadline = time.time() + 2
            while fab._hub.frames_fenced < 1:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("fence drop never recorded")
                time.sleep(0.01)

    def test_unstamped_frames_pass_unfenced(self):
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b")], fast=True
        ) as fab:
            fab.set_epoch_fence(lambda src, epoch: False)  # rejects all
            fab.send("a", "b", b"legacy frame")  # no FLAG_EPOCH
            assert bytes(fab.recv("b", timeout=2)) == b"legacy frame"

    def test_fence_exception_fails_open(self):
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b")], fast=True
        ) as fab:
            def broken(src, epoch):
                raise RuntimeError("fence bug")
            fab.set_epoch_fence(broken)
            fab.send_many("a", [("b", b"survives")], epoch=1)
            assert bytes(fab.recv("b", timeout=2)) == b"survives"

    def test_unreadable_epoch_prefix_is_fenced(self):
        hub = InprocMuxRouter()
        hub.start()
        got = []
        try:
            hub.set_epoch_fence(lambda src, epoch: True)
            la = hub.attach(1, lambda p: None)
            hub.attach(2, got.append)
            la.send(2, b"xx", flags=FLAG_EPOCH)  # shorter than the prefix
            deadline = time.time() + 2
            while hub.frames_fenced < 1:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("truncated epoch frame not fenced")
                time.sleep(0.01)
            assert got == []
        finally:
            hub.stop()


# ---------------------------------------------------------------------------
# Registration staleness: TCP re-dial, inproc re-attach
# ---------------------------------------------------------------------------

class TestRegistrationStaleness:
    def test_tcp_redial_retires_stale_registration(self):
        router = MuxRouter()
        router.start()
        old, new, sent = [], [], []
        try:
            l1 = router.attach(1, old.append)
            l2 = router.attach(2, sent.append)
            l2.send(1, b"first")
            deadline = time.time() + 2
            while not old:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("pre-redial frame never arrived")
                time.sleep(0.01)
            # the site restarts: same id, fresh socket.  The HELLO must
            # atomically retire the stale route, not race with it.
            l1b = router.attach(1, new.append)
            l2.send(1, b"second")
            deadline = time.time() + 2
            while not new:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("post-redial frame never arrived")
                time.sleep(0.01)
            assert bytes(new[0]) == b"second"
            assert [bytes(p) for p in old] == [b"first"]
            l1b.close()
        finally:
            l1.close()
            l2.close()
            router.stop()

    def test_inproc_reattach_revives_disconnected_id(self):
        plan = FaultPlan(seed=1).add(
            "mux.forward", "disconnect", key=(1, 2), count=1
        )
        hub = InprocMuxRouter()
        hub.start()
        got = []
        try:
            l1 = hub.attach(1, lambda p: None)
            hub.attach(2, got.append)
            with faults.injection(plan):
                l1.send(2, b"killer")  # disconnects id 2
                l1.send(2, b"into the void")
                deadline = time.time() + 2
                while hub.frames_dropped < 2:
                    if time.time() > deadline:  # pragma: no cover
                        pytest.fail("disconnect never took effect")
                    time.sleep(0.01)
            assert got == []
            hub.attach(2, got.append)  # restart: same id, fresh deliver
            l1.send(2, b"alive again")
            deadline = time.time() + 2
            while not got:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("revived id never received")
                time.sleep(0.01)
            assert bytes(got[0]) == b"alive again"
        finally:
            hub.stop()


# ---------------------------------------------------------------------------
# Hash ring: membership churn under concurrent routing
# ---------------------------------------------------------------------------

class TestHashRingChurn:
    def test_concurrent_routing_during_churn(self):
        core = [f"n{i}" for i in range(4)]
        churners = [f"x{i}" for i in range(4)]
        ring = ConsistentHashRing(core)
        stop = threading.Event()
        errors = []

        def route_loop():
            try:
                universe = set(core) | set(churners)
                while not stop.is_set():
                    for k in range(64):
                        # membership may change between these two calls;
                        # each must stay internally consistent and total
                        assert ring.route(k) in universe
                        pref = ring.preference(k, 3)
                        assert pref and set(pref) <= universe
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=route_loop) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                for n in churners:
                    ring.add(n)
                for n in churners:
                    ring.remove(n)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors
        # churn is fully unwound: layout is a function of the member set
        assert ring.nodes == frozenset(core)
        fresh = ConsistentHashRing(core)
        assert [ring.route(k) for k in range(256)] == [
            fresh.route(k) for k in range(256)
        ]


# ---------------------------------------------------------------------------
# Runtime plumbing units
# ---------------------------------------------------------------------------

class TestDegradedRoundsBounded:
    def test_retained_window_and_total(self):
        st = LiveSiteStats(s=0)
        n = DEGRADED_ROUNDS_RETAINED + 25
        for r in range(n):
            st.record_degraded(r)
        assert st.degraded_total == n
        assert len(st.degraded_rounds) == DEGRADED_ROUNDS_RETAINED
        assert st.degraded_rounds[0] == n - DEGRADED_ROUNDS_RETAINED
        assert st.degraded_rounds[-1] == n - 1

    def test_short_runs_keep_exact_list(self):
        st = LiveSiteStats(s=0)
        st.record_degraded(0)
        assert st.degraded_rounds == [0] and st.degraded_total == 1


class TestLinPointCache:
    def test_checkpointed_lin_point_hits_cache(self, net14, pf14):
        rng = np.random.default_rng(7)
        ms = generate_measurements(
            net14, full_placement(net14), pf14, rng=rng
        )
        est = WlsEstimator(net14, ms)
        cs = CondensedStep2(est, np.array([0, 1, 2]))
        lp = (pf14.Vm.copy(), pf14.Va.copy())
        assert not cs.lin_point_cached(lp)
        cs.estimate(x0=lp, lin_point=lp)
        assert cs.lin_point_cached(lp)
        # a wire round trip preserves the point bit-exactly, so a
        # failover successor reuses the donor's factorisation
        ck = SubsystemCheckpoint(
            subsystem=0, site=0, epoch=0, round=0,
            own_ids=np.arange(net14.n_bus, dtype=np.int64),
            own_vm=pf14.Vm, own_va=pf14.Va,
            lin_vm=lp[0], lin_va=lp[1],
        )
        back = SubsystemCheckpoint.from_payload(ck.to_payload())
        assert cs.lin_point_cached((back.lin_vm, back.lin_va))
        assert not cs.lin_point_cached((lp[0] + 1e-12, lp[1]))


# ---------------------------------------------------------------------------
# Live runtime: chaos acceptance on the synthetic grid
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def live_setup():
    net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
    pf = run_ac_power_flow(net)
    dec = decompose(net, 3, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    return dec, ms


KILL_SE1 = FaultPlan(seed=2026).add(
    "mux.forward", "disconnect", key=(2, 1), count=1
)


def _live(dec, ms, *, recovery=None, condense=False, rounds=8):
    return LiveDseRuntime(
        dec, ms, fast=True, recv_timeout=0.5, round_deadline=2.0,
        condense=condense, recovery=recovery,
    ).run(rounds=rounds)


class TestLiveRecovery:
    def test_recovery_needs_fast_and_cache(self, live_setup):
        dec, ms = live_setup
        with pytest.raises(ValueError, match="recovery needs"):
            LiveDseRuntime(dec, ms, fast=False, recovery=RecoveryConfig())
        with pytest.raises(ValueError, match="recovery needs"):
            LiveDseRuntime(
                dec, ms, fast=True, use_cache=False,
                recovery=RecoveryConfig(),
            )

    def test_clean_run_is_bitwise_inert(self, live_setup):
        dec, ms = live_setup
        on = _live(dec, ms, recovery=RecoveryConfig(lease_rounds=2))
        off = _live(dec, ms)
        assert on.recovered_subsystems == [] and on.lost_sites == []
        assert on.degraded == {}
        # recovery only adds planes (checkpoints, heartbeats, the fence);
        # the Step-2 numerics are untouched, so the state is identical
        assert np.array_equal(on.Vm, off.Vm)
        assert np.array_equal(on.Va, off.Va)

    def test_site_kill_recovers_bounded_and_converges(self, live_setup):
        dec, ms = live_setup
        rounds = max(1, dec.diameter()) + 20
        clean = _live(
            dec, ms, recovery=RecoveryConfig(lease_rounds=2), rounds=rounds
        )
        inj = FaultInjector(KILL_SE1)
        with faults.injection(inj):
            res = _live(
                dec, ms, recovery=RecoveryConfig(lease_rounds=2),
                rounds=rounds,
            )
        assert res.lost_sites == [1]
        assert res.recovered_subsystems == [1]
        # promotion lands within lease_rounds + 1 of the kill at round 0:
        # every degraded round predates it
        promoted_on = [
            s for s, st in res.sites.items() if st.promoted_subsystems
        ]
        assert len(promoted_on) == 1
        assert res.sites[promoted_on[0]].promoted_subsystems == [1]
        for site, rs in res.degraded.items():
            assert max(rs) <= 3, (site, rs)
        # the re-seeded subsystem contracts back onto the uninterrupted
        # run's fixed point
        assert float(np.max(np.abs(res.Vm - clean.Vm))) <= 1e-8
        assert float(np.max(np.abs(res.Va - clean.Va))) <= 1e-8
        # checkpoints were replicated by every surviving site
        for s in promoted_on:
            assert res.sites[s].checkpoints_sent > 0

    def test_fault_plan_replays_bit_for_bit(self, live_setup):
        dec, ms = live_setup
        inj = FaultInjector(KILL_SE1)
        with faults.injection(inj):
            first = _live(dec, ms, recovery=RecoveryConfig(lease_rounds=2))
        inj2 = FaultInjector(KILL_SE1)
        with faults.injection(inj2):
            second = _live(dec, ms, recovery=RecoveryConfig(lease_rounds=2))
        assert inj.fired_summary() == inj2.fired_summary()
        assert inj.fired_summary() == {
            ("mux.forward", (2, 1), "disconnect"): 1
        }
        assert first.lost_sites == second.lost_sites == [1]
        assert first.recovered_subsystems == second.recovered_subsystems

    def test_condensed_recovery(self, live_setup):
        dec, ms = live_setup
        rounds = max(1, dec.diameter()) + 20
        clean = _live(
            dec, ms, recovery=RecoveryConfig(lease_rounds=2),
            condense=True, rounds=rounds,
        )
        inj = FaultInjector(KILL_SE1)
        with faults.injection(inj):
            res = _live(
                dec, ms, recovery=RecoveryConfig(lease_rounds=2),
                condense=True, rounds=rounds,
            )
        assert res.lost_sites == [1]
        assert res.recovered_subsystems == [1]
        assert float(np.max(np.abs(res.Vm - clean.Vm))) <= 1e-7
        assert float(np.max(np.abs(res.Va - clean.Va))) <= 1e-7

    def test_session_reports_recovered_frames(self, live_setup):
        # session-level counterpart: a frame that degrades under a
        # one-shot drop recovers on the next frame, and the report says so
        net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
        _dec, ms = live_setup
        plan = FaultPlan(seed=7).add(
            "mux.forward", "drop", key=(0, 1), count=1
        )
        with ArchitecturePrototype.assemble(
            net, m_subsystems=3, seed=0, with_fabric=True, fabric_fast=True
        ) as arch:
            session = DseSession(
                arch, degrade_on_failure=True, fabric_timeout=0.3
            )
            with faults.injection(plan) as inj:
                rep1 = session.process_frame(ms)
            assert inj.fired_summary() == {
                ("mux.forward", (0, 1), "drop"): 1
            }
            rep2 = session.process_frame(ms)
        assert rep1.degraded_subsystems
        assert rep1.recovered_subsystems == []
        assert rep2.degraded_subsystems == []
        assert rep2.recovered_subsystems == rep1.degraded_subsystems
        d = rep2.to_dict()
        assert d["recovered_subsystems"] == rep2.recovered_subsystems
        back = FrameReport.from_dict(d)
        assert back.recovered_subsystems == rep2.recovered_subsystems

    def test_recovery_counters_emitted(self, live_setup):
        dec, ms = live_setup
        obs.configure(enabled=True, reset=True)
        try:
            inj = FaultInjector(KILL_SE1)
            with faults.injection(inj):
                res = _live(dec, ms, recovery=RecoveryConfig(lease_rounds=2))
            assert res.recovered_subsystems == [1]
            names = {m["name"] for m in obs.metrics().collect()}
            assert "recovery.promotions_total" in names
            assert "recovery.checkpoints_sent_total" in names
            assert "recovery.replicas_stored_total" in names
            assert "membership.leases_expired_total" in names
            assert "membership.epoch" in names
            assert "mw.checkpoint_frames_sent_total" in names
        finally:
            obs.configure(enabled=False, reset=True)


# ---------------------------------------------------------------------------
# IEEE-118 chaos acceptance (the PR gate scenario)
# ---------------------------------------------------------------------------

class TestIeee118ChaosAcceptance:
    def test_site_kill_recovers_on_ieee118(self, net118, pf118):
        dec = decompose(net118, 9, seed=0)
        rng = np.random.default_rng(0)
        plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net118, plac, pf118, rng=rng)
        rounds = max(1, dec.diameter()) + 28
        kill = FaultPlan(seed=2026).add(
            "mux.forward", "disconnect", key=(0, 8), count=1
        )

        def run(plan=None):
            live = LiveDseRuntime(
                dec, ms, fast=True, recv_timeout=0.5, round_deadline=2.0,
                recovery=RecoveryConfig(lease_rounds=2),
            )
            if plan is None:
                return live.run(rounds=rounds), None
            inj = FaultInjector(plan)
            with faults.injection(inj):
                return live.run(rounds=rounds), inj.fired_summary()

        clean, _ = run()
        assert clean.lost_sites == [] and clean.degraded == {}

        res, fired = run(kill)
        assert res.lost_sites == [8]
        assert res.recovered_subsystems == [8]
        # degraded ≤ N frames: every degraded round predates the
        # promotion landing (kill at round 0, lease_rounds=2)
        for site, rs in res.degraded.items():
            assert max(rs) <= 3, (site, rs)
        # state parity with the uninterrupted run after recovery
        assert float(np.max(np.abs(res.Vm - clean.Vm))) <= 1e-8
        assert float(np.max(np.abs(res.Va - clean.Va))) <= 1e-8
        # bit-for-bit replay from the same plan
        _, fired2 = run(kill)
        assert fired2 == fired == {
            ("mux.forward", (0, 8), "disconnect"): 1
        }
