"""Scale-out execution: process pool, executor specs, scenario serving.

The process backend is an optimisation with a hard contract: results must
be *bit-identical* to serial execution (the parent computes every task's
inputs, workers only evaluate), workers must not leak past shutdown, and
worker-side failures must surface in the parent with the original
traceback text.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.contingency import ContingencyAnalyzer, enumerate_n1, run_parallel
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.measurements import full_placement, generate_measurements
from repro.parallel import (
    ProcessPoolBackend,
    SerialExecutor,
    ThreadPoolBackend,
    WorkerError,
    make_executor,
    worker_context,
)
from repro.serving import (
    ContingencyRequest,
    EstimationRequest,
    ScenarioService,
)


@pytest.fixture(scope="module")
def dse118(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    return dec, ms


@pytest.fixture(scope="module")
def dse14(net14, pf14):
    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(3)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    return dec, ms


def _no_leaked_workers(timeout: float = 5.0) -> bool:
    """Wait for worker processes to exit (shutdown joins, but be safe)."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.05)
    return True


def _square(i):
    return i * i


def _boom(i):
    if i == 2:
        raise ValueError("worker task exploded")
    return i


def _identity_builder(payload):
    return payload


def _context_reader(args):
    key, i = args
    return worker_context(key) + i


class TestProcessBackendParity:
    def test_dse118_bit_equal_serial(self, dse118):
        dec, ms = dse118
        serial = DistributedStateEstimator(
            dec, ms, executor=SerialExecutor()
        ).run()
        with ProcessPoolBackend(2) as pool:
            dist = DistributedStateEstimator(dec, ms, executor=pool).run()
        assert np.array_equal(serial.Vm, dist.Vm)
        assert np.array_equal(serial.Va, dist.Va)
        assert dist.rounds == serial.rounds

    def test_contingency14_bit_equal_serial(self, net14):
        analyzer = ContingencyAnalyzer(net14, method="dc", rating_margin=1.1)
        cons, _ = enumerate_n1(net14)
        ref = [analyzer.analyze(c) for c in cons]
        with ProcessPoolBackend(2) as pool:
            report = run_parallel(
                analyzer, cons, executor=pool, scheme="dynamic"
            )
        assert len(report.results) == len(ref)
        for got, exp in zip(report.results, ref):
            assert got.contingency == exp.contingency
            assert got.converged == exp.converged
            assert got.max_loading == exp.max_loading
            assert [
                (v.branch, v.flow, v.rating) for v in got.violations
            ] == [(v.branch, v.flow, v.rating) for v in exp.violations]

    def test_values_only_frames_match_rebuild(self, dse14):
        """run(z=...) over warm caches == rebuilding the estimator."""
        dec, ms = dse14
        rng = np.random.default_rng(5)
        z = ms.z + 0.01 * ms.sigma * rng.standard_normal(len(ms))
        dse = DistributedStateEstimator(dec, ms, warm_start=False)
        dse.run()  # warm the caches with the template frame
        framed = dse.run(z=z)
        rebuilt = DistributedStateEstimator(
            dec, ms.with_values(z), warm_start=False
        ).run()
        assert np.array_equal(framed.Vm, rebuilt.Vm)
        assert np.array_equal(framed.Va, rebuilt.Va)


class TestProcessBackendLifecycle:
    def test_map_basic_and_order(self):
        with ProcessPoolBackend(2) as pool:
            assert pool.map(_square, range(10)) == [i * i for i in range(10)]

    def test_worker_context_roundtrip(self):
        with ProcessPoolBackend(2) as pool:
            pool.initialize("t:base", _identity_builder, 100)
            out = pool.map(_context_reader, [("t:base", i) for i in range(4)])
            assert out == [100, 101, 102, 103]
            # re-registering the same key is a no-op (workers stay warm)
            pool.initialize("t:base", _identity_builder, 999)
            assert pool.map(_context_reader, [("t:base", 0)]) == [100]

    def test_missing_context_raises(self):
        with pytest.raises(RuntimeError, match="not initialised"):
            worker_context("never-registered")

    def test_shutdown_idempotent(self):
        pool = ProcessPoolBackend(2)
        pool.map(_square, range(4))
        pool.shutdown()
        pool.shutdown()  # second call must be a no-op
        assert _no_leaked_workers()
        # the backend is reusable after shutdown (fresh pool)
        assert pool.map(_square, [3]) == [9]
        pool.shutdown()

    def test_context_manager_releases_workers(self):
        with ProcessPoolBackend(2) as pool:
            pool.map(_square, range(4))
        assert _no_leaked_workers()

    def test_worker_exception_propagates_traceback(self):
        with ProcessPoolBackend(2) as pool:
            with pytest.raises(ValueError, match="worker task exploded") as ei:
                pool.map(_boom, range(5))
        cause = ei.value.__cause__
        assert isinstance(cause, WorkerError)
        # the worker-side traceback text survives the process boundary
        assert "ValueError: worker task exploded" in str(cause)
        assert "_boom" in str(cause)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)


class TestExecutorSpecs:
    def test_process_specs(self):
        pool = make_executor("processes:3")
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.n_workers == 3
        assert pool.distributed
        pool.shutdown()
        default = make_executor("processes")
        assert isinstance(default, ProcessPoolBackend)
        default.shutdown()

    def test_thread_specs(self):
        pool = make_executor("threads:5")
        assert isinstance(pool, ThreadPoolBackend)
        assert pool.n_workers == 5
        assert not pool.distributed
        pool.shutdown()

    def test_error_enumerates_accepted_specs(self):
        with pytest.raises(ValueError) as ei:
            make_executor("gpu:4")
        msg = str(ei.value)
        for frag in ("'serial'", "'threads:N'", "'processes:N'", "int"):
            assert frag in msg
        with pytest.raises(ValueError):
            make_executor("threads:0")
        with pytest.raises(ValueError):
            make_executor("threads:x")
        with pytest.raises(ValueError):
            make_executor(True)

    def test_thread_pool_is_lazy(self):
        pool = ThreadPoolBackend(2)
        assert pool._pool is None  # constructing must not spawn threads
        assert pool.map(_square, [2]) == [4]
        assert pool._pool is not None
        pool.shutdown()
        assert pool._pool is None
        assert pool.map(_square, [5]) == [25]  # transparently re-created
        pool.shutdown()


class TestAnalyzeAllExecutor:
    def test_matches_serial(self, net14):
        analyzer = ContingencyAnalyzer(net14, method="dc", rating_margin=1.1)
        cons, _ = enumerate_n1(net14)
        ref = analyzer.analyze_all(cons)
        out = analyzer.analyze_all(cons, executor="threads:2")
        assert len(out) == len(ref)
        for got, exp in zip(out, ref):
            assert got.contingency == exp.contingency
            assert got.max_loading == exp.max_loading


class TestScenarioService:
    def test_mixed_batch_round_trip(self, dse14, net14):
        dec, ms = dse14
        cons, _ = enumerate_n1(net14)
        ref = DistributedStateEstimator(dec, ms, executor=None).run()
        with ScenarioService(
            dec, ms, executor="threads:2", max_batch=8, flush_latency=0.02
        ) as svc:
            futs = svc.submit_contingencies(cons[:5])
            fe = svc.submit_estimation()
            con_results = [f.result(timeout=60) for f in futs]
            est = fe.result(timeout=60)
        assert len(con_results) == 5
        assert all(r.batch_size >= 1 for r in con_results)
        assert np.array_equal(est.value.Vm, ref.Vm)
        assert np.array_equal(est.value.Va, ref.Va)

    def test_values_only_frame(self, dse14):
        dec, ms = dse14
        rng = np.random.default_rng(9)
        z = ms.z + 0.01 * ms.sigma * rng.standard_normal(len(ms))
        ref = DistributedStateEstimator(
            dec, ms.with_values(z), warm_start=False
        ).run()
        with ScenarioService(dec, ms, max_batch=4) as svc:
            got = svc.submit_estimation(z=z).result(timeout=60)
        assert np.allclose(got.value.Vm, ref.Vm, atol=1e-10)
        assert np.allclose(got.value.Va, ref.Va, atol=1e-10)

    def test_run_preserves_request_order(self, dse14, net14):
        dec, ms = dse14
        cons, _ = enumerate_n1(net14)
        reqs = [
            ContingencyRequest(cons[0]),
            EstimationRequest(),
            ContingencyRequest(cons[1]),
        ]
        with ScenarioService(dec, ms, max_batch=8) as svc:
            out = svc.run(reqs)
        assert [r.request for r in out] == reqs

    def test_stream_and_stats(self, dse14, net14):
        dec, ms = dse14
        cons, _ = enumerate_n1(net14)
        with ScenarioService(
            dec, ms, max_batch=4, flush_latency=0.02
        ) as svc:
            got = list(svc.stream([ContingencyRequest(c) for c in cons[:6]]))
            assert len(got) == 6
            assert svc.stats.n_requests == 6
            assert svc.stats.n_batches >= 2  # 6 requests, batches capped at 4
            assert 1.0 <= svc.stats.mean_batch_size <= 4.0
            assert svc.stats.latency_percentile(50) >= 0.0

    def test_close_idempotent_and_rejects_submits(self, dse14):
        dec, ms = dse14
        svc = ScenarioService(dec, ms, max_batch=2)
        svc.submit_estimation().result(timeout=60)
        svc.close()
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit_estimation()
        assert _no_leaked_workers()

    def test_rejects_bad_options(self, dse14):
        dec, ms = dse14
        with pytest.raises(ValueError, match="engine"):
            ScenarioService(dec, ms, engine="quantum")
        with pytest.raises(ValueError, match="max_batch"):
            ScenarioService(dec, ms, max_batch=0)
        with pytest.raises(ValueError, match="flush_latency"):
            ScenarioService(dec, ms, flush_latency=-1.0)
        with ScenarioService(dec, ms) as svc:
            with pytest.raises(TypeError, match="EstimationRequest"):
                svc.submit("not a request")

    def test_shared_executor_not_shut_down(self, dse14):
        dec, ms = dse14
        pool = ThreadPoolBackend(2)
        with ScenarioService(dec, ms, executor=pool) as svc:
            svc.submit_estimation().result(timeout=60)
        # service close must not tear down a caller-owned pool
        assert pool.map(_square, [4]) == [16]
        pool.shutdown()

    def test_session_wiring(self, net14, pf14):
        """DseSession.scenario_service shares the session's executor."""
        from repro.core import ArchitecturePrototype, DseSession
        from repro.measurements import full_placement as fp

        arch = ArchitecturePrototype.assemble(net14, m_subsystems=2, seed=0)
        session = DseSession(arch, executor="threads:2")
        rng = np.random.default_rng(1)
        plac = fp(net14).merged_with(dse_pmu_placement(arch.dec))
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        with session.scenario_service(ms, max_batch=4) as svc:
            assert svc.executor is session.executor
            res = svc.submit_estimation().result(timeout=60)
            assert res.value.Vm.shape == (net14.n_bus,)
        # the session keeps its pool after the service closes
        assert session.executor.map(_square, [3]) == [9]
        session.executor.shutdown()
        arch.close()
