"""Tests for the Schur-complement boundary condensation of DSE Step 2.

Covers the condensed solver against the reference gain solve, condensed
DSE parity with the reference path across update scopes and executors,
the compact condensed wire form (pack/unpack, live round-trip, byte
accounting) and the interaction with the fault/degraded paths.
"""

import numpy as np
import pytest

from repro import faults
from repro.core import LiveDseRuntime
from repro.dse import (
    DistributedStateEstimator,
    decompose,
    dse_pmu_placement,
    neighbor_publication_sets,
)
from repro.dse.algorithm import _localized_perm
from repro.measurements.failures import drop_region
from repro.estimation.solvers import (
    GainSolveError,
    SchurGainSolver,
    build_gain,
)
from repro.estimation.wls import WlsEstimator
from repro.faults import FaultPlan
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements
from repro.middleware.message import (
    FrameError,
    condensed_update_nbytes,
    pack_condensed_update,
    state_update_nbytes,
    unpack_condensed_update,
)


@pytest.fixture(scope="module")
def setup14(net14, pf14):
    dec = decompose(net14, 3, seed=0)
    rng = np.random.default_rng(7)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    return dec, ms


@pytest.fixture(scope="module")
def setup118(net118, pf118):
    dec = decompose(net118, 4, seed=0)
    rng = np.random.default_rng(7)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    return dec, ms


# ---------------------------------------------------------------------------
# SchurGainSolver against the plain gain solve
# ---------------------------------------------------------------------------

class TestSchurGainSolver:
    def _system(self, net14, pf14):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        est = WlsEstimator(net14, ms)
        H = est._jacobian_at(pf14.Vm, pf14.Va)
        return est, H, ms.weights

    def test_matches_dense_solve(self, net14, pf14):
        est, H, w = self._system(net14, pf14)
        n = est.n_states
        rng = np.random.default_rng(1)
        boundary = np.sort(rng.choice(n, size=n // 3, replace=False))
        schur = SchurGainSolver(boundary, n)
        schur.factor(H, w)
        rhs = rng.standard_normal(n)
        dx = schur.solve(rhs)
        G = build_gain(H, w).toarray()
        np.testing.assert_allclose(dx, np.linalg.solve(G, rhs), atol=1e-9)

    def test_all_boundary_and_all_interior(self, net14, pf14):
        est, H, w = self._system(net14, pf14)
        n = est.n_states
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal(n)
        ref = np.linalg.solve(build_gain(H, w).toarray(), rhs)
        for boundary in (np.arange(n), np.zeros(0, dtype=np.int64)):
            schur = SchurGainSolver(boundary, n)
            schur.factor(H, w)
            np.testing.assert_allclose(schur.solve(rhs), ref, atol=1e-9)

    def test_refactor_reuses_ordering_bitwise(self, net14, pf14):
        """Warm refactorization at a new point matches a cold solver at
        that point bit-for-bit (the GainSolver perm-cache property)."""
        est, H0, w = self._system(net14, pf14)
        n = est.n_states
        boundary = np.arange(0, n, 3)
        H1 = est._jacobian_at(pf14.Vm * 1.01, pf14.Va * 0.99)
        rhs = np.random.default_rng(3).standard_normal(n)

        warm = SchurGainSolver(boundary, n)
        warm.factor(H0, w)
        warm.factor(H1, w)  # refactor via cached ordering
        cold = SchurGainSolver(boundary, n)
        cold.factor(H1, w)
        assert np.array_equal(warm.solve(rhs), cold.solve(rhs))

    def test_solve_before_factor_raises(self):
        schur = SchurGainSolver(np.array([0, 1]), 4)
        with pytest.raises(GainSolveError):
            schur.solve(np.zeros(4))

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            SchurGainSolver(np.array([0, 7]), 4)
        with pytest.raises(ValueError):
            SchurGainSolver(np.array([-1]), 4)


# ---------------------------------------------------------------------------
# Condensed DSE parity with the reference Step 2
# ---------------------------------------------------------------------------

class TestCondensedParity:
    @pytest.mark.parametrize("scope", ["exchange", "all"])
    @pytest.mark.parametrize("case", ["setup14", "setup118"])
    def test_state_parity(self, case, scope, request):
        dec, ms = request.getfixturevalue(case)
        ref = DistributedStateEstimator(dec, ms, update_scope=scope).run()
        con = DistributedStateEstimator(
            dec, ms, update_scope=scope, condense=True
        ).run()
        assert np.max(np.abs(con.Vm - ref.Vm)) <= 1e-8
        assert np.max(np.abs(con.Va - ref.Va)) <= 1e-8

    def test_values_only_frames_parity(self, setup118):
        """Repeated values-only z frames through one warm condensed DSE
        stay within parity of the reference path frame by frame."""
        dec, ms = setup118
        rng = np.random.default_rng(11)
        ref = DistributedStateEstimator(dec, ms)
        con = DistributedStateEstimator(dec, ms, condense=True)
        for _ in range(3):
            z = ms.z + rng.normal(0.0, 1e-4, size=len(ms))
            r_ref = ref.run(z=z)
            r_con = con.run(z=z)
            assert np.max(np.abs(r_con.Vm - r_ref.Vm)) <= 1e-8
            assert np.max(np.abs(r_con.Va - r_ref.Va)) <= 1e-8

    def test_executors_bitwise_equal(self, setup14):
        """Condensed results are bit-identical across serial, thread and
        process executors (the history-free linearization point)."""
        dec, ms = setup14
        serial = DistributedStateEstimator(dec, ms, condense=True).run()
        threads = DistributedStateEstimator(
            dec, ms, condense=True, executor="threads"
        ).run()
        assert np.array_equal(serial.Vm, threads.Vm)
        assert np.array_equal(serial.Va, threads.Va)
        dse_p = DistributedStateEstimator(dec, ms, condense=True, executor=2)
        try:
            pooled = dse_p.run()
        finally:
            dse_p.executor.shutdown()
        assert np.array_equal(serial.Vm, pooled.Vm)
        assert np.array_equal(serial.Va, pooled.Va)

    def test_factors_once_across_rounds_and_frames(self, setup14):
        dec, ms = setup14
        dse = DistributedStateEstimator(dec, ms, condense=True)
        r1 = dse.run(rounds=3)
        counts = [dse._step2_cache[s][0].factor_count for s in range(dec.m)]
        assert counts == [1] * dec.m  # one factorization despite many rounds
        dse.run(rounds=3)  # identical frame: same lin point, no refactor
        counts2 = [dse._step2_cache[s][0].factor_count for s in range(dec.m)]
        assert counts2 == counts
        assert r1.rounds > 1
        for rec in r1.records.values():
            assert rec.condensed
            assert rec.n_boundary_states > 0
            assert rec.factor_time >= 0.0

    def test_condense_requires_reuse_structures(self, setup14):
        dec, ms = setup14
        with pytest.raises(ValueError, match="reuse_structures"):
            DistributedStateEstimator(
                dec, ms, condense=True, reuse_structures=False
            )


# ---------------------------------------------------------------------------
# Byte accounting
# ---------------------------------------------------------------------------

class TestByteAccounting:
    def test_reference_bytes_are_packed_frame_sizes(self, setup118):
        dec, ms = setup118
        res = DistributedStateEstimator(dec, ms).run()
        for s, rec in res.records.items():
            per_round = state_update_nbytes(rec.exchange_size) * len(
                dec.neighbors(s)
            )
            assert rec.bytes_sent_per_round == [per_round] * res.rounds

    def test_condensed_bytes_and_reduction(self, setup118):
        dec, ms = setup118
        ref = DistributedStateEstimator(dec, ms).run()
        con = DistributedStateEstimator(dec, ms, condense=True).run()
        pubs = neighbor_publication_sets(dec)
        for s, rec in con.records.items():
            expect = [
                sum(
                    condensed_update_nbytes(len(ids), values_only=r > 0)
                    for ids in pubs[s].values()
                )
                for r in range(con.rounds)
            ]
            assert rec.bytes_sent_per_round == expect
        # the tentpole's exchange-volume win
        assert ref.total_bytes_exchanged > 2 * con.total_bytes_exchanged


# ---------------------------------------------------------------------------
# Condensed wire form
# ---------------------------------------------------------------------------

class TestCondensedWireForm:
    def test_round_trip_full(self):
        ids = np.array([3, 17, 250000], dtype=np.int64)
        vm = np.array([1.01, 0.98, 1.05])
        va = np.array([-0.1, 0.02, 0.3])
        buf = pack_condensed_update(9, ids, vm, va)
        assert len(buf) == condensed_update_nbytes(3)
        src, vo, ids2, vm2, va2 = unpack_condensed_update(buf)
        assert src == 9 and vo is False
        assert np.array_equal(ids2, ids)
        assert np.array_equal(vm2, vm)
        assert np.array_equal(va2, va)

    def test_round_trip_values_only(self):
        ids = np.array([1, 2], dtype=np.int64)
        vm = np.array([1.0, 1.02])
        va = np.array([0.0, -0.05])
        buf = pack_condensed_update(4, ids, vm, va, values_only=True)
        assert len(buf) == condensed_update_nbytes(2, values_only=True)
        assert len(buf) < condensed_update_nbytes(2)
        src, vo, ids2, vm2, va2 = unpack_condensed_update(buf)
        assert src == 4 and vo is True and ids2 is None
        assert np.array_equal(vm2, vm)
        assert np.array_equal(va2, va)

    def test_corrupt_frames_rejected(self):
        ids = np.array([1, 2], dtype=np.int64)
        buf = pack_condensed_update(0, ids, np.ones(2), np.zeros(2))
        with pytest.raises(FrameError):
            unpack_condensed_update(bytes(buf[:-3]))  # truncated
        bad = bytearray(buf)
        bad[0] ^= 0xFF  # wrong version
        with pytest.raises(FrameError):
            unpack_condensed_update(bytes(bad))
        with pytest.raises(FrameError):
            unpack_condensed_update(b"")

    def test_smaller_than_legacy_frame(self):
        n = 12
        assert condensed_update_nbytes(n) < state_update_nbytes(n)
        assert condensed_update_nbytes(n, values_only=True) < (
            condensed_update_nbytes(n)
        )


# ---------------------------------------------------------------------------
# Live runtime with condensed payloads
# ---------------------------------------------------------------------------

class TestLiveCondensed:
    def test_bitwise_match_inproc_condensed(self, setup118):
        dec, ms = setup118
        inproc = DistributedStateEstimator(dec, ms, condense=True).run()
        live = LiveDseRuntime(dec, ms, condense=True).run()
        assert live.errors == []
        assert np.array_equal(live.Vm, inproc.Vm)
        assert np.array_equal(live.Va, inproc.Va)

    def test_byte_accounting_matches_live_wire(self, setup118):
        """In-process byte accounting equals the bytes the live fabric
        actually moved, byte for byte."""
        dec, ms = setup118
        inproc = DistributedStateEstimator(dec, ms, condense=True).run()
        live = LiveDseRuntime(dec, ms, condense=True).run()
        sent = sum(st.bytes_sent for st in live.sites.values())
        received = sum(st.bytes_received for st in live.sites.values())
        assert sent == received == inproc.total_bytes_exchanged

    def test_condense_requires_cache(self, setup14):
        dec, ms = setup14
        with pytest.raises(ValueError, match="use_cache"):
            LiveDseRuntime(dec, ms, condense=True, use_cache=False)

    def test_fault_drop_degrades_not_hangs(self):
        """A dropped condensed frame degrades the receiving site's round
        (partial-coverage fallback) without breaking the run."""
        net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
        pf = run_ac_power_flow(net, flat_start=True)
        dec = decompose(net, 3, seed=0)
        rng = np.random.default_rng(5)
        plac = full_placement(net).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        plan = FaultPlan(seed=0).add("mux.forward", "drop", count=1)
        with faults.injection(plan) as inj:
            res = LiveDseRuntime(
                dec, ms, condense=True, recv_timeout=0.5, round_deadline=5.0
            ).run(rounds=2)
        assert inj.fired_summary()  # the drop actually fired
        assert res.degraded  # and starved a site for that round
        assert np.all(np.isfinite(res.Vm)) and np.all(np.isfinite(res.Va))


# ---------------------------------------------------------------------------
# Degraded-solve interaction (PR 5 fault paths)
# ---------------------------------------------------------------------------

class TestCondensedDegraded:
    def test_unobservable_subsystem_degrades(self, net118, pf118):
        dec = decompose(net118, 4, seed=0)
        rng = np.random.default_rng(2)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        internal = np.setdiff1d(dec.buses(0), dec.boundary_buses(0))
        sub, rows = drop_region(net118, ms, internal)
        assert len(rows) > 0
        dse = DistributedStateEstimator(
            dec, sub, auto_anchor=False, degrade_on_failure=True, condense=True
        )
        res = dse.run()
        assert 0 in res.degraded_subsystems
        assert res.records[0].failures
        assert np.all(np.isfinite(res.Vm)) and np.all(np.isfinite(res.Va))
        # degraded rounds still charge their wire bytes
        for rec in res.records.values():
            assert len(rec.bytes_sent_per_round) == res.rounds


# ---------------------------------------------------------------------------
# Vectorized _localized_perm
# ---------------------------------------------------------------------------

class TestLocalizedPerm:
    def test_matches_per_row_reference(self, net118, pf118):
        rng = np.random.default_rng(9)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        rows = np.sort(rng.choice(len(ms), size=len(ms) // 2, replace=False))
        bus_map = rng.permutation(net118.n_bus).astype(np.int64)
        branch_map = rng.permutation(net118.n_branch).astype(np.int64)

        # reference: the original per-row Measurement-object loop
        from repro.measurements.types import _TYPE_ORDER

        tpos = {t: i for i, t in enumerate(_TYPE_ORDER)}
        keys = []
        for row in rows:
            m = ms[int(row)]
            local = (
                bus_map[m.element] if m.mtype.is_bus else branch_map[m.element]
            )
            keys.append((tpos[m.mtype], int(local)))
        ref = np.lexsort(
            (np.array([k[1] for k in keys]), np.array([k[0] for k in keys]))
        )
        got = _localized_perm(ms, rows, bus_map, branch_map)
        assert np.array_equal(got, ref)
