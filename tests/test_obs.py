"""Tests for the unified observability layer (repro.obs).

Covers the metrics registry (including the exact-sum concurrent-increment
regression the registry replaces ad-hoc counters for), span trees and
context propagation across threads / process-pool workers / the TCP mux
wire, the exporters and the obsreport CLI, the telemetry serialization
round-trip, the deprecated-but-re-entrant Timer, and the bit-identical
estimator-output guarantee with observability on vs off.
"""

import json
import threading
import warnings

import numpy as np
import pytest

from repro import obs
from repro.core import LiveDseRuntime
from repro.core.telemetry import FrameReport, PhaseBreakdown, Timer
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.measurements import full_placement, generate_measurements
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import (
    RemoteSpanRecorder,
    SpanContext,
    Tracer,
    pack_span_context,
    unpack_span_context,
)
from repro.serving.requests import ServiceStats


@pytest.fixture
def obs_on():
    """Enable observability for one test, restoring the default after."""
    obs.configure(enabled=True, sample_every=1, reset=True)
    yield obs
    obs.configure(enabled=False, sample_every=1, reset=True)


@pytest.fixture(scope="module")
def dse14(net14, pf14):
    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(3)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    return dec, ms


# -- metrics ----------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_basics(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2)
        assert reg.counter("a").value == 3.0
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)
        reg.gauge("g").set(7)
        reg.gauge("g").inc(0.5)
        assert reg.gauge("g").value == 7.5

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("it", solver="lu").inc(4)
        reg.counter("it", solver="pcg").inc(9)
        assert reg.counter("it", solver="lu").value == 4.0
        assert reg.counter("it", solver="pcg").value == 9.0
        assert reg.get("it", solver="qr") is None

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_quantiles_and_snapshot(self):
        h = Histogram("lat")
        for v in [0.001 * i for i in range(1, 101)]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.1)
        assert snap["sum"] == pytest.approx(sum(0.001 * i for i in range(1, 101)))
        # streaming quantiles are bucket estimates: generous tolerance, but
        # they must be ordered and clamped inside the observed range
        assert snap["min"] <= snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]
        assert h.quantile(0.5) == pytest.approx(0.05, rel=0.5)

    def test_counter_concurrent_increments_sum_exactly(self):
        """S1 regression: the registry counter that replaced the ad-hoc
        unsynchronized stats must sum exactly under thread contention."""
        c = Counter("hits")
        n_threads, per_thread = 8, 5000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_service_stats_concurrent_records_sum_exactly(self):
        """S1 regression for ServiceStats (dispatcher thread vs readers)."""
        stats = ServiceStats()
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                stats.record_request(0.001)
                stats.record_batch(2)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.n_requests == n_threads * per_thread
        assert len(stats.latencies) == n_threads * per_thread
        assert stats.n_batches == n_threads * per_thread
        assert stats.mean_batch_size == 2.0


# -- tracing ----------------------------------------------------------------
class TestTracing:
    def test_nesting_parents_and_context_restore(self):
        tr = Tracer()
        with tr.start_span("outer") as outer:
            with tr.start_span("inner") as inner:
                assert inner.context.trace_id == outer.context.trace_id
                assert inner.parent_id == outer.context.span_id
        spans = {d["name"]: d for d in tr.finished()}
        assert spans["inner"]["parent"] == spans["outer"]["span"]
        assert spans["outer"]["parent"] is None
        from repro.obs.trace import current_context

        assert current_context() is None  # fully restored

    def test_exception_marks_error_and_still_records(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.start_span("boom"):
                raise RuntimeError("kaput")
        (d,) = tr.finished()
        assert d["status"] == "error"
        assert "kaput" in d["attrs"]["error"]

    def test_head_sampling_is_per_root_trace(self):
        tr = Tracer(sample_every=2)
        for _ in range(4):
            with tr.start_span("root", parent=None):
                with tr.start_span("child"):
                    pass
        # roots 0 and 2 sampled, children inherit: 2 traces x 2 spans
        assert len(tr.finished()) == 4
        assert len({d["trace"] for d in tr.finished()}) == 2
        none = Tracer(sample_every=0)
        with none.start_span("root", parent=None):
            pass
        assert none.finished() == []

    def test_disabled_hub_returns_noop_span(self):
        assert not obs.enabled()
        sp = obs.span("anything", x=1)
        assert sp is obs.NOOP_SPAN
        with sp:
            sp.set_attr("ignored", True)
        assert obs.current_context() is None
        assert obs.pack_current_context() is None

    def test_pack_unpack_roundtrip(self):
        ctx = SpanContext(trace_id=123456789, span_id=987654321, sampled=True)
        buf = pack_span_context(ctx)
        assert len(buf) == obs.TRACE_CTX_SIZE == 17
        assert unpack_span_context(buf) == ctx
        # offset form (wire prefix parsing)
        assert unpack_span_context(b"\x00" * 3 + buf, 3) == ctx

    def test_remote_recorder_roundtrip(self):
        ctx = SpanContext(trace_id=42, span_id=7, sampled=True)
        rec = RemoteSpanRecorder(pack_span_context(ctx))
        with rec.span("work", s=3):
            pass
        (d,) = rec.export()
        assert d["trace"] == 42 and d["parent"] == 7
        assert d["attrs"] == {"s": 3}
        # None parent (obs disabled at the submitter) -> full no-op
        off = RemoteSpanRecorder(None)
        with off.span("work"):
            pass
        assert off.export() is None

    def test_max_spans_drops_and_counts(self):
        tr = Tracer(max_spans=2)
        for _ in range(4):
            with tr.start_span("s", parent=None):
                pass
        assert len(tr.finished()) == 2
        assert tr.spans_dropped == 2


# -- DSE trace trees --------------------------------------------------------
def _frame_tree(tracer):
    spans = tracer.finished()
    by_name = {}
    for d in spans:
        by_name.setdefault(d["name"], []).append(d)
    return spans, by_name


class TestDseTraces:
    @pytest.mark.parametrize("executor", [None, "threads:2"])
    def test_frame_trace_complete(self, dse14, obs_on, executor):
        dec, ms = dse14
        res = DistributedStateEstimator(dec, ms, executor=executor).run()
        spans, by_name = _frame_tree(obs.tracer())
        assert len({d["trace"] for d in spans}) == 1  # one frame, one trace
        (frame,) = by_name["dse.frame"]
        assert frame["parent"] is None
        assert frame["attrs"]["rounds"] == res.rounds
        (step1,) = by_name["dse.step1"]
        assert step1["parent"] == frame["span"]
        assert len(by_name["dse.step1.subsystem"]) == dec.m
        assert all(
            d["parent"] == step1["span"] for d in by_name["dse.step1.subsystem"]
        )
        assert len(by_name["dse.exchange"]) == res.rounds
        assert len(by_name["dse.step2"]) == res.rounds
        assert len(by_name["dse.step2.subsystem"]) == dec.m * res.rounds
        step2_ids = {d["span"] for d in by_name["dse.step2"]}
        assert all(
            d["parent"] in step2_ids for d in by_name["dse.step2.subsystem"]
        )

    def test_process_pool_spans_join_parent_trace(self, dse14, obs_on):
        dec, ms = dse14
        dse = DistributedStateEstimator(dec, ms, executor="processes:2")
        try:
            res = dse.run()
        finally:
            dse.executor.shutdown()
        spans, by_name = _frame_tree(obs.tracer())
        assert len({d["trace"] for d in spans}) == 1
        workers = by_name["dse.step1.subsystem"] + by_name["dse.step2.subsystem"]
        assert len(workers) == dec.m * (1 + res.rounds)
        # the subsystem solves really ran in other processes, and their
        # spans were shipped back and grafted into this trace
        assert len({d["pid"] for d in spans}) >= 2

    def test_metrics_recorded_per_frame(self, dse14, obs_on):
        dec, ms = dse14
        res = DistributedStateEstimator(dec, ms).run()
        reg = obs.metrics()
        assert reg.counter("dse.frames_total").value == 1.0
        assert reg.counter("dse.bytes_exchanged_total").value == float(
            res.total_bytes_exchanged
        )
        assert reg.histogram("dse.frame.seconds").count == 1
        assert reg.get("wls.iterations_total", solver="lu").value > 0

    def test_bit_identical_with_obs_on_and_off(self, dse14):
        dec, ms = dse14
        obs.configure(enabled=False, reset=True)
        off = DistributedStateEstimator(dec, ms).run()
        obs.configure(enabled=True, reset=True)
        try:
            on = DistributedStateEstimator(dec, ms).run()
        finally:
            obs.configure(enabled=False, reset=True)
        assert np.array_equal(on.Vm, off.Vm)
        assert np.array_equal(on.Va, off.Va)


# -- wire propagation (TCP mux fast path) -----------------------------------
class TestWirePropagation:
    def test_mux_forward_spans_join_live_trace(self, dse14, obs_on):
        dec, ms = dse14
        live = LiveDseRuntime(dec, ms, use_tcp=True, fast=True).run()
        assert live.errors == []
        spans, by_name = _frame_tree(obs.tracer())
        (root,) = by_name["live.run"]
        assert len({d["trace"] for d in spans}) == 1
        assert len(by_name["live.site"]) == dec.m
        forwards = by_name["mux.forward"]
        assert forwards, "router hop recorded no mux.forward spans"
        span_ids = {d["span"] for d in spans}
        # every router-hop span is parented to a span of this same trace
        assert all(
            d["trace"] == root["trace"] and d["parent"] in span_ids
            for d in forwards
        )

    def test_live_results_unchanged_by_tracing(self, dse14, obs_on):
        dec, ms = dse14
        ref = DistributedStateEstimator(dec, ms).run()
        live = LiveDseRuntime(dec, ms, use_tcp=True, fast=True).run()
        assert np.array_equal(live.Vm, ref.Vm)
        assert np.array_equal(live.Va, ref.Va)


# -- exporters / CLI --------------------------------------------------------
class TestExport:
    def test_jsonl_roundtrip(self, tmp_path, obs_on):
        with obs.span("root", case="t"):
            with obs.span("leaf"):
                pass
        obs.metrics().counter("c", k="v").inc(3)
        obs.metrics().histogram("h").observe(0.25)
        path = tmp_path / "dump.jsonl"
        n = obs.export_jsonl(
            path, tracer=obs.tracer(), registry=obs.metrics(),
            meta={"case": "t"},
        )
        dump = obs.load_jsonl(path)
        assert dump["meta"]["format"] == "repro-obs-v1"
        assert dump["meta"]["case"] == "t"
        assert len(dump["spans"]) == 2
        assert n == 1 + len(dump["spans"]) + len(dump["metrics"])
        (c,) = [m for m in dump["metrics"] if m["name"] == "c"]
        assert c["metric_kind"] == "counter" and c["value"] == 3.0
        (h,) = [m for m in dump["metrics"] if m["name"] == "h"]
        assert h["count"] == 1 and h["p50"] == pytest.approx(0.25, rel=0.5)

    def test_prometheus_rendering(self, obs_on):
        obs.metrics().counter("dse.frames_total").inc(2)
        obs.metrics().histogram("dse.frame.seconds").observe(0.1)
        text = obs.render_prometheus(obs.metrics())
        assert "# TYPE dse_frames_total counter" in text
        assert "dse_frames_total 2" in text
        assert 'dse_frame_seconds{quantile="0.5"}' in text
        assert "dse_frame_seconds_count 1" in text

    def test_flame_render_shows_tree(self, obs_on):
        with obs.span("session.frame"):
            with obs.span("dse.frame"):
                pass
        out = obs.render_flame(obs.tracer().finished())
        assert "session.frame" in out
        assert "dse.frame" in out
        # child indented under parent
        parent_line = next(l for l in out.splitlines() if "session.frame" in l)
        child_line = next(l for l in out.splitlines() if "dse.frame" in l)
        assert len(child_line) - len(child_line.lstrip()) > (
            len(parent_line) - len(parent_line.lstrip())
        )

    def test_obsreport_cli_smoke(self, tmp_path, capsys, obs_on):
        from repro.core.telemetry import FrameReport, PhaseBreakdown
        from repro.tools import obsreport

        with obs.span("root"):
            pass
        obs.metrics().counter("c").inc()
        rep = FrameReport(
            t=0.0, noise_level=0.1, expected_iterations=3.0,
            mapping_step1={"c0": [0]}, imbalance_step1=1.0,
            mapping_step2={"c0": [0]}, imbalance_step2=1.0,
            edge_cut_step2=0, migrated_weight=0, rounds=2,
            bytes_exchanged=128, timings=PhaseBreakdown(step1=0.01),
            wall_time=0.02,
        )
        path = tmp_path / "s.jsonl"
        obs.export_jsonl(path, tracer=obs.tracer(), registry=obs.metrics(),
                         frames=[rep])
        assert obsreport.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 spans" in out and "root" in out and "== frames ==" in out
        assert obsreport.main([str(path), "--prometheus"]) == 0
        assert "# TYPE c counter" in capsys.readouterr().out


# -- telemetry (satellites 2 + 3) -------------------------------------------
class TestTelemetry:
    def test_timer_deprecated_but_working(self):
        t = Timer()
        with pytest.warns(DeprecationWarning):
            with t:
                pass
        assert t.elapsed >= 0.0

    def test_timer_reentrant_nesting(self):
        t = Timer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with t:
                with t:
                    pass
                inner = t.elapsed
            outer = t.elapsed
        assert outer >= inner >= 0.0

    def test_timer_exception_safe(self):
        t = Timer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                with t:
                    raise ValueError("body failed")
            assert t.elapsed >= 0.0
            with t:  # reusable after the exception
                pass
        assert t._starts == []

    def test_phase_breakdown_roundtrip(self):
        pb = PhaseBreakdown(
            step1=0.1, redistribution=0.02,
            exchange_per_round=[0.01, 0.02], step2_per_round=[0.3, 0.4],
        )
        d = json.loads(json.dumps(pb.to_dict()))
        assert d["total"] == pytest.approx(pb.total)
        back = PhaseBreakdown.from_dict(d)
        assert back == pb

    def test_frame_report_roundtrip(self):
        rep = FrameReport(
            t=4.0, noise_level=0.3, expected_iterations=3.5,
            mapping_step1={"c0": [0, 1], "c1": [2]}, imbalance_step1=1.1,
            mapping_step2={"c0": [0], "c1": [1, 2]}, imbalance_step2=1.2,
            edge_cut_step2=3, migrated_weight=17, rounds=2,
            bytes_exchanged=4096,
            timings=PhaseBreakdown(step1=0.1, step2_per_round=[0.2]),
            wall_time=0.5, vm_rmse_vs_truth=1e-4,
            bad_data={"suspect_subsystems": [1], "removed_global_rows": [9],
                      "clean_after_identification": True},
        )
        d = json.loads(json.dumps(rep.to_dict()))
        back = FrameReport.from_dict(d)
        assert back.to_dict() == rep.to_dict()
        assert back.timings == rep.timings
        assert back.mapping_step2 == rep.mapping_step2
