"""Golden-file tests for the console renderers (obsreport / obstop).

The fixture ``tests/data/blackbox_fixture.jsonl`` is a checked-in
repro-obs-v1 blackbox (spans, health events, metric records — including
label values with backslashes, quotes and newlines — and a ring
snapshot).  The goldens pin the exact console output: renderer changes
that alter formatting must update the goldens deliberately, and the
Prometheus golden doubles as the label-escaping contract.

Regenerate after an intentional format change by re-running each CLI
against the fixture and replacing the path with ``<fixture>``.
"""

import io
import time
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.tools import obsreport, obstop

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "blackbox_fixture.jsonl"


def _normalize(text: str) -> str:
    return text.replace(str(FIXTURE), "<fixture>")


def _run(main, argv) -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0
    return _normalize(buf.getvalue())


def _golden(name: str) -> str:
    return (DATA / name).read_text(encoding="utf-8")


class TestObsreportGoldens:
    def test_full_report_matches_golden(self):
        assert _run(obsreport.main, [str(FIXTURE)]) == _golden(
            "golden_obsreport_full.txt"
        )

    def test_metrics_section_matches_golden(self):
        assert _run(obsreport.main, [str(FIXTURE), "--metrics"]) == _golden(
            "golden_obsreport_metrics.txt"
        )

    def test_prometheus_rendering_matches_golden(self):
        out = _run(obsreport.main, [str(FIXTURE), "--prometheus"])
        assert out == _golden("golden_obsreport_prometheus.txt")
        # the escaping contract, spelled out: the raw label values
        # contain a backslash path, quotes and a newline
        assert r'path="C:\\tmp\\\"x\""' in out
        assert r'msg="line1\nline2"' in out
        # histograms expose _sum and _count series
        assert "serving_latency_seconds_sum 0.42" in out
        assert "serving_latency_seconds_count 14" in out

    def test_traces_only_shows_flames(self):
        out = _run(obsreport.main, [str(FIXTURE), "--traces"])
        assert "== traces ==" in out and "== metrics ==" not in out
        assert "dse.step2.round" in out and "[ERROR]" in out

    def test_max_depth_truncates(self):
        out = _run(obsreport.main, [str(FIXTURE), "--traces", "--max-depth", "1"])
        assert "serving.batch" in out and "scenario.solve" not in out


class TestObstopGolden:
    def test_dashboard_matches_golden(self, monkeypatch):
        # the event tail renders wall-clock stamps via localtime: pin the
        # timezone so the golden is machine-independent
        monkeypatch.setenv("TZ", "UTC")
        time.tzset()
        try:
            assert _run(obstop.main, [str(FIXTURE)]) == _golden(
                "golden_obstop.txt"
            )
        finally:
            monkeypatch.undo()
            time.tzset()

    def test_max_events_truncates_tail(self):
        out = _run(obstop.main, [str(FIXTURE), "--max-events", "1"])
        assert "(2 total)" in out
        assert "shard.lost" not in out.split("recent health events")[1]
        assert "slo.burn" in out

    def test_snapshot_fallback_without_metric_records(self, tmp_path):
        # a blackbox holding only ring snapshots renders the newest ring
        keep = [
            line for line in FIXTURE.read_text().splitlines()
            if '"kind": "metric"' not in line
        ]
        stripped = tmp_path / "rings_only.jsonl"
        stripped.write_text("\n".join(keep) + "\n")
        out = _run(obstop.main, [str(stripped)])
        assert "serving.requests_total" in out
        assert "12" in out          # the ring value, not the live 14
