"""Smoke tests: the shipped examples must run end to end.

Each example's ``main()`` is imported and executed; the assertion is
"no exception and plausible output".  The WECC-scale example is exercised
at reduced size elsewhere (bench A4) and skipped here for runtime.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name, marker",
    [
        ("quickstart", "chi-square"),
        ("dse_ieee118", "accuracy"),
        ("pmu_streaming", "normalized-residual"),
        ("contingency_analysis", "speedup"),
        ("adaptive_operations", "frames"),
        ("serve_scenarios", "batches"),
        ("serve_sharded", "shards"),
        ("batch_sweep", "speedup"),
        ("condensed_dse", "smaller"),
        ("health_demo", "blackbox written"),
        ("recovery_demo", "recovered"),
    ],
)
def test_example_runs(capsys, name, marker):
    mod = _load(name)
    mod.main()
    out = capsys.readouterr().out
    assert marker in out
    assert "Traceback" not in out
