"""Tests for island / connectivity analysis."""

import numpy as np
import pytest

from repro.grid import find_islands, is_single_island, subgraph_components
from repro.grid.cases import case4_dict, case14
from repro.grid.network import Network


class TestFindIslands:
    def test_connected_case_single_island(self, net14):
        islands = find_islands(net14)
        assert len(islands) == 1
        assert np.array_equal(islands[0], np.arange(14))

    def test_cut_branch_splits(self):
        d = case4_dict()
        # Remove 2-4 and 3-4: bus 4 becomes its own island.
        d["branch"][3][10] = 0
        d["branch"][4][10] = 0
        net = Network.from_case(d)
        islands = find_islands(net)
        assert len(islands) == 2
        assert [3] in [i.tolist() for i in islands]

    def test_is_single_island_false_after_cut(self):
        d = case4_dict()
        d["branch"][3][10] = 0
        d["branch"][4][10] = 0
        net = Network.from_case(d)
        assert not is_single_island(net)

    def test_islands_are_sorted_and_disjoint(self):
        d = case4_dict()
        d["branch"][3][10] = 0
        d["branch"][4][10] = 0
        net = Network.from_case(d)
        islands = find_islands(net)
        all_buses = np.concatenate(islands)
        assert sorted(all_buses.tolist()) == list(range(4))


class TestSubgraphComponents:
    def test_connected_subset(self, net14):
        pairs = net14.adjacency_pairs()
        comps = subgraph_components(14, pairs, np.array([0, 1, 2, 3]))
        # buses 1,2,3,4 are mutually connected in case14
        assert len(comps) == 1

    def test_disconnected_subset(self, net14):
        pairs = net14.adjacency_pairs()
        # bus 0 (bus 1) and bus 13 (bus 14) are not adjacent
        comps = subgraph_components(14, pairs, np.array([0, 13]))
        assert len(comps) == 2

    def test_empty_members(self, net14):
        comps = subgraph_components(14, net14.adjacency_pairs(), np.array([], int))
        assert comps == []

    def test_single_member(self, net14):
        comps = subgraph_components(14, net14.adjacency_pairs(), np.array([5]))
        assert len(comps) == 1
        assert comps[0].tolist() == [5]

    def test_indices_in_original_space(self, net14):
        pairs = net14.adjacency_pairs()
        comps = subgraph_components(14, pairs, np.array([10, 11, 12]))
        for comp in comps:
            assert set(comp.tolist()) <= {10, 11, 12}
