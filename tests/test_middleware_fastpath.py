"""Tests for the middleware fast path: pooling, mux framing, zero-copy.

Covers the frame edge cases (MAX_FRAME boundary, oversized rejection on
both ends, mid-header / mid-payload disconnects, interleaved concurrent
senders over one pooled connection), the pooled ``MWClient`` lifecycle
(reuse, reconnect, idle reaping), the mux router data plane, and the
zero-copy pack/unpack contracts.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.middleware import (
    EndpointRegistry,
    FrameError,
    InprocTransport,
    MiddlewareFabric,
    MuxRouter,
    MWClient,
    PeerClosed,
    StreamReader,
    TcpTransport,
    pack_state_update,
    recv_frame,
    recv_mux_frame,
    send_frame,
    send_frames,
    send_mux_frame,
    send_mux_frames,
    unpack_state_update,
)
from repro.middleware import message as message_mod


def _socketpair():
    a, b = socket.socketpair()
    return a, b


# ----------------------------------------------------------------------
# frame edge cases
# ----------------------------------------------------------------------
class TestFrameEdgeCases:
    def test_payload_at_exactly_max_frame(self, monkeypatch):
        monkeypatch.setattr(message_mod, "MAX_FRAME", 64)
        a, b = _socketpair()
        try:
            send_frame(a, b"x" * 64)  # exactly MAX_FRAME: allowed
            assert recv_frame(b) == b"x" * 64
        finally:
            a.close()
            b.close()

    def test_oversized_rejected_on_send(self, monkeypatch):
        monkeypatch.setattr(message_mod, "MAX_FRAME", 64)
        a, b = _socketpair()
        try:
            with pytest.raises(FrameError, match="too large"):
                send_frame(a, b"x" * 65)
            with pytest.raises(FrameError, match="too large"):
                send_frames(a, [b"ok", b"x" * 65])
            with pytest.raises(FrameError, match="too large"):
                send_mux_frame(a, 1, 2, b"x" * 65)
            with pytest.raises(FrameError, match="too large"):
                send_mux_frames(a, 1, [(2, b"x" * 65)])
        finally:
            a.close()
            b.close()

    def test_oversized_rejected_on_recv(self, monkeypatch):
        a, b = _socketpair()
        try:
            # handcrafted legacy header advertising an over-limit frame
            a.sendall(struct.pack(">Q", 65))
            monkeypatch.setattr(message_mod, "MAX_FRAME", 64)
            with pytest.raises(FrameError, match="too large"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_rejected_on_mux_recv(self, monkeypatch):
        a, b = _socketpair()
        try:
            a.sendall(message_mod.MUX_HEADER.pack(1, 0, 3, 4, 65))
            monkeypatch.setattr(message_mod, "MAX_FRAME", 64)
            with pytest.raises(FrameError, match="too large"):
                recv_mux_frame(b)
        finally:
            a.close()
            b.close()

    def test_closed_mid_header(self):
        a, b = _socketpair()
        a.sendall(b"\x00\x00\x00")  # 3 of 8 header bytes
        a.close()
        try:
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_closed_mid_payload(self):
        a, b = _socketpair()
        a.sendall(struct.pack(">Q", 10) + b"abcd")  # 4 of 10 payload bytes
        a.close()
        try:
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_clean_eof_is_peer_closed(self):
        a, b = _socketpair()
        a.close()
        try:
            with pytest.raises(PeerClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_mux_roundtrip(self):
        a, b = _socketpair()
        try:
            send_mux_frame(a, 3, 7, b"payload", flags=0)
            flags, src, dst, payload = recv_mux_frame(b)
            assert (flags, src, dst) == (0, 3, 7)
            assert payload == b"payload"
        finally:
            a.close()
            b.close()

    def test_mux_version_mismatch_rejected(self):
        a, b = _socketpair()
        try:
            a.sendall(message_mod.MUX_HEADER.pack(99, 0, 0, 0, 0))
            with pytest.raises(FrameError, match="version"):
                recv_mux_frame(b)
        finally:
            a.close()
            b.close()

    def test_batched_frames_arrive_individually(self):
        a, b = _socketpair()
        try:
            payloads = [b"one", b"", b"three" * 100]
            send_frames(a, payloads)
            for expect in payloads:
                assert recv_frame(b) == expect
        finally:
            a.close()
            b.close()


class TestStreamReader:
    def test_incremental_header_and_payload(self):
        a, b = _socketpair()
        b.setblocking(False)
        reader = StreamReader()
        try:
            wire = struct.pack(">Q", 5) + b"hello"
            for i, byte in enumerate(wire):
                a.sendall(bytes([byte]))
                # tiny wait so the byte is visible to the reader
                deadline = time.time() + 1
                while True:
                    frames = reader.feed(b)
                    if frames or i < len(wire) - 1:
                        break
                    if time.time() > deadline:  # pragma: no cover
                        pytest.fail("frame never completed")
                if i < len(wire) - 1:
                    assert frames == []
            assert frames == [b"hello"]
        finally:
            a.close()
            b.close()

    def test_many_frames_single_feed(self):
        a, b = _socketpair()
        b.setblocking(False)
        reader = StreamReader()
        try:
            send_frames(a, [b"x", b"yy", b"zzz"])
            time.sleep(0.05)
            frames = reader.feed(b)
            assert frames == [b"x", b"yy", b"zzz"]
        finally:
            a.close()
            b.close()

    def test_mux_mode_metadata(self):
        a, b = _socketpair()
        b.setblocking(False)
        reader = StreamReader(mux=True)
        try:
            send_mux_frames(a, 5, [(8, b"p1"), (9, b"p2")])
            time.sleep(0.05)
            frames = reader.feed(b)
            assert [(s, d, bytes(p)) for _, s, d, p in frames] == [
                (5, 8, b"p1"),
                (5, 9, b"p2"),
            ]
        finally:
            a.close()
            b.close()

    def test_eof_mid_payload_raises(self):
        a, b = _socketpair()
        b.setblocking(False)
        reader = StreamReader()
        try:
            a.sendall(struct.pack(">Q", 10) + b"1234")
            a.close()
            time.sleep(0.05)
            with pytest.raises(FrameError, match="mid-payload"):
                reader.feed(b)
        finally:
            b.close()


# ----------------------------------------------------------------------
# socket timeout hygiene
# ----------------------------------------------------------------------
class TestTimeoutRestored:
    def test_recv_bytes_restores_socket_timeout(self):
        t = TcpTransport()
        listener = t.listen("tcp://127.0.0.1:0")
        got = []

        def server():
            conn = listener.accept(timeout=2)
            got.append(conn)

        th = threading.Thread(target=server, daemon=True)
        th.start()
        client = t.connect(listener.endpoint.url)
        th.join(timeout=2)
        try:
            assert client._sock.gettimeout() is None
            with pytest.raises(TimeoutError):
                client.recv_bytes(timeout=0.05)
            # the per-call timeout must not leak into the socket state
            assert client._sock.gettimeout() is None
        finally:
            client.close()
            for conn in got:
                conn.close()
            listener.close()


# ----------------------------------------------------------------------
# pooled client
# ----------------------------------------------------------------------
class TestPooledClient:
    def _tcp_pair(self, **kw):
        registry = EndpointRegistry()
        rx = MWClient("rx", registry)
        rx.serve("tcp://127.0.0.1:0")
        tx = MWClient("tx", registry, **kw)
        return registry, rx, tx

    def test_connection_reused_across_sends(self):
        _, rx, tx = self._tcp_pair()
        try:
            for i in range(10):
                tx.send("rx", b"m%d" % i)
            for i in range(10):
                assert rx.recv(timeout=2) == b"m%d" % i
            assert tx.dials == 1
        finally:
            tx.close()
            rx.close()

    def test_unpooled_dials_per_message(self):
        _, rx, tx = self._tcp_pair(pool=False)
        try:
            for i in range(3):
                tx.send("rx", b"x")
            for _ in range(3):
                rx.recv(timeout=2)
            assert tx.dials == 3
        finally:
            tx.close()
            rx.close()

    def test_reconnect_after_broken_connection(self):
        registry, rx, tx = self._tcp_pair()
        try:
            tx.send("rx", b"first")
            assert rx.recv(timeout=2) == b"first"
            # break the pooled connection out from under the client
            url = registry.resolve("rx")
            tx._pool[url].close()
            tx.send("rx", b"second")  # transparent re-dial
            assert rx.recv(timeout=2) == b"second"
            assert tx.dials == 2
        finally:
            tx.close()
            rx.close()

    def test_idle_connections_reaped(self):
        t = InprocTransport()
        registry = EndpointRegistry()
        a = MWClient("a", registry, inproc=t)
        b = MWClient("b", registry, inproc=t)
        a.serve("inproc://a")
        b.serve("inproc://b")
        tx = MWClient("tx", registry, inproc=t, pool_idle_timeout=0.05)
        try:
            tx.send("a", b"x")
            assert len(tx._pool) == 1
            time.sleep(0.1)
            tx.send("b", b"y")  # reaps the idle connection to a
            assert len(tx._pool) == 1
            assert registry.resolve("a") not in tx._pool
            tx.send("a", b"z")  # re-dial
            assert tx.dials == 3
            assert a.recv(timeout=2) == b"x"
            assert a.recv(timeout=2) == b"z"
            assert b.recv(timeout=2) == b"y"
        finally:
            tx.close()
            a.close()
            b.close()

    def test_interleaved_concurrent_senders_one_connection(self):
        """Many threads share one pooled connection; frames never tear."""
        _, rx, tx = self._tcp_pair()
        n_threads, n_msgs = 8, 25
        try:
            def sender(tid):
                for i in range(n_msgs):
                    # distinct fill byte and length per (thread, message)
                    tx.send("rx", bytes([tid]) * (100 + tid * 13 + i))

            threads = [
                threading.Thread(target=sender, args=(tid,), daemon=True)
                for tid in range(1, n_threads + 1)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=10)
            counts = {}
            for _ in range(n_threads * n_msgs):
                payload = bytes(rx.recv(timeout=5))
                tid = payload[0]
                assert payload == bytes([tid]) * len(payload)  # untorn
                counts[tid] = counts.get(tid, 0) + 1
            assert counts == {tid: n_msgs for tid in range(1, n_threads + 1)}
            assert tx.dials == 1
        finally:
            tx.close()
            rx.close()

    def test_send_many_coalesces_in_order(self):
        _, rx, tx = self._tcp_pair()
        try:
            tx.send_many("rx", [b"a", b"bb", b"ccc"])
            assert [bytes(rx.recv(timeout=2)) for _ in range(3)] == [
                b"a",
                b"bb",
                b"ccc",
            ]
            assert tx.dials == 1
        finally:
            tx.close()
            rx.close()


# ----------------------------------------------------------------------
# mux router data plane
# ----------------------------------------------------------------------
class TestMuxFabric:
    @pytest.mark.parametrize("use_tcp", [False, True])
    def test_roundtrip_and_stats(self, use_tcp):
        pairs = [("a", "b"), ("b", "a"), ("a", "c")]
        with MiddlewareFabric(
            ["a", "b", "c"], pairs=pairs, use_tcp=use_tcp, fast=True
        ) as fab:
            fab.send("a", "b", b"hello")
            assert bytes(fab.recv("b", timeout=2)) == b"hello"
            fab.send_many("a", [("b", b"x" * 10), ("c", b"y" * 20)])
            assert bytes(fab.recv("b", timeout=2)) == b"x" * 10
            assert bytes(fab.recv("c", timeout=2)) == b"y" * 20
            deadline = time.time() + 2
            while (
                fab.relay_stats()[("a", "b")][0] < 2
                or fab.relay_stats()[("a", "c")][0] < 1
            ):
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("stats never caught up")
                time.sleep(0.01)
            stats = fab.relay_stats()
            assert stats[("a", "b")] == (2, 15)
            assert stats[("a", "c")] == (1, 20)
            assert stats[("b", "a")] == (0, 0)

    def test_unknown_pair_rejected(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")], fast=True) as fab:
            with pytest.raises(KeyError, match="no pipeline"):
                fab.send("b", "a", b"x")
            with pytest.raises(KeyError, match="no pipeline"):
                fab.send_many("b", [("a", b"x")])

    def test_state_update_through_fast_fabric(self):
        with MiddlewareFabric(["s0", "s1"], pairs=[("s0", "s1")], fast=True) as fab:
            payload = pack_state_update(
                np.array([7, 8]), np.array([1.01, 0.99]), np.array([0.05, -0.02])
            )
            fab.send("s0", "s1", payload)
            ids, vm, va = unpack_state_update(fab.recv("s1", timeout=2))
            assert ids.tolist() == [7, 8]
            assert vm[0] == pytest.approx(1.01)

    def test_router_drops_frames_for_unknown_destination(self):
        router = MuxRouter()
        router.start()
        got = []
        link = router.attach(1, got.append)
        try:
            link.send(99, b"nobody home")
            deadline = time.time() + 2
            while router.frames_dropped == 0:
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("drop never recorded")
                time.sleep(0.01)
            assert got == []
        finally:
            link.close()
            router.stop()

    def test_bytes_accounting(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")], fast=True) as fab:
            fab.send("a", "b", b"12345")
            fab.recv("b", timeout=2)
            assert fab.clients["a"].bytes_sent == 5
            assert fab.clients["b"].bytes_received == 5


# ----------------------------------------------------------------------
# zero-copy pack/unpack contracts
# ----------------------------------------------------------------------
class TestZeroCopyStateUpdate:
    def test_pack_matches_legacy_wire_format(self):
        ids = np.array([5, 9], dtype=np.int64)
        vm = np.array([1.0, 0.98])
        va = np.array([-0.1, 0.2])
        legacy = (
            struct.pack(">Q", 2) + ids.tobytes() + vm.tobytes() + va.tobytes()
        )
        assert bytes(pack_state_update(ids, vm, va)) == legacy

    def test_unpack_views_alias_buffer(self):
        buf = pack_state_update(
            np.array([1, 2]), np.array([1.0, 2.0]), np.array([3.0, 4.0])
        )
        ids, vm, va = unpack_state_update(buf, copy=False)
        assert np.shares_memory(vm, np.frombuffer(buf, dtype=np.uint8))
        # mutating the wire buffer is visible through the views
        np.frombuffer(buf, dtype=np.float64, count=2, offset=8 + 16)[:] = [9.0, 8.0]
        assert vm.tolist() == [9.0, 8.0]

    def test_unpack_copy_owns_memory(self):
        buf = pack_state_update(
            np.array([1]), np.array([1.5]), np.array([2.5])
        )
        ids, vm, va = unpack_state_update(buf, copy=True)
        assert not np.shares_memory(vm, np.frombuffer(buf, dtype=np.uint8))
