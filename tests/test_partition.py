"""Tests for the multilevel k-way partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    WeightedGraph,
    coarsen,
    edge_cut,
    greedy_growing,
    heavy_edge_matching,
    initial_partition,
    load_imbalance,
    migration_volume,
    part_weights,
    partition_kway,
    rebalance,
    refine_partition,
    repartition,
)

PAPER_VWGT = np.array([14, 13, 13, 13, 13, 12, 14, 13, 13])
PAPER_EDGES = [
    (0, 1), (0, 3), (0, 4), (1, 2), (1, 5), (2, 5),
    (3, 4), (3, 6), (4, 5), (4, 6), (4, 7), (6, 8),
]


def paper_graph():
    ew = [PAPER_VWGT[u] + PAPER_VWGT[v] for u, v in PAPER_EDGES]
    return WeightedGraph.from_edges(9, PAPER_EDGES, vwgt=PAPER_VWGT, ewgt=ew)


def random_connected_graph(n, extra, seed, max_vw=8):
    rng = np.random.default_rng(seed)
    edges = {(int(rng.integers(0, i)), i) for i in range(1, n)}
    while len(edges) < n - 1 + extra:
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return WeightedGraph.from_edges(
        n, sorted(edges), vwgt=rng.integers(1, max_vw, n),
        ewgt=rng.integers(1, 10, len(edges)),
    )


class TestWeightedGraph:
    def test_from_edges_basic(self):
        g = WeightedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2
        assert g.degree(1) == 2

    def test_parallel_edges_merged(self):
        g = WeightedGraph.from_edges(2, [(0, 1), (1, 0)], ewgt=[2, 3])
        assert g.n_edges == 1
        pairs, w = g.edge_list()
        assert w.tolist() == [5]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            WeightedGraph.from_edges(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            WeightedGraph.from_edges(2, [(0, 5)])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph.from_edges(2, [(0, 1)], vwgt=[-1, 1])

    def test_neighbors_and_weights_aligned(self):
        g = WeightedGraph.from_edges(3, [(0, 1), (0, 2)], ewgt=[5, 7])
        nbrs = g.neighbors(0)
        wts = g.edge_weights(0)
        assert dict(zip(nbrs.tolist(), wts.tolist())) == {1: 5, 2: 7}

    def test_edge_list_roundtrip(self):
        g = paper_graph()
        pairs, w = g.edge_list()
        g2 = WeightedGraph.from_edges(9, pairs, vwgt=g.vwgt, ewgt=w)
        p2, w2 = g2.edge_list()
        assert np.array_equal(pairs, p2)
        assert np.array_equal(w, w2)

    def test_is_connected(self):
        assert paper_graph().is_connected()
        g = WeightedGraph.from_edges(3, [(0, 1)])
        assert not g.is_connected()

    def test_with_weights_updates_edges(self):
        g = paper_graph()
        g2 = g.with_weights(ewgt_map=lambda u, v: 1)
        _, w = g2.edge_list()
        assert np.all(w == 1)
        assert np.array_equal(g2.vwgt, g.vwgt)

    def test_paper_table1_edge_weights(self):
        """Table I: edge weight = sum of endpoint bus counts."""
        g = paper_graph()
        pairs, w = g.edge_list()
        lut = {(int(u), int(v)): int(x) for (u, v), x in zip(pairs, w)}
        assert lut[(0, 1)] == 27
        assert lut[(1, 2)] == 26
        assert lut[(2, 5)] == 25
        assert lut[(6, 8)] == 27


class TestCoarsen:
    def test_matching_is_symmetric(self):
        g = random_connected_graph(50, 60, seed=1)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        for v in range(50):
            assert match[match[v]] == v

    def test_matching_pairs_are_adjacent(self):
        g = random_connected_graph(50, 60, seed=2)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        for v in range(50):
            if match[v] != v:
                assert match[v] in g.neighbors(v)

    def test_coarse_preserves_total_vwgt(self):
        g = random_connected_graph(60, 80, seed=3)
        lvl = coarsen(g, np.random.default_rng(0))
        assert lvl.coarse.total_vwgt == g.total_vwgt

    def test_coarse_shrinks(self):
        g = random_connected_graph(60, 80, seed=4)
        lvl = coarsen(g, np.random.default_rng(0))
        assert lvl.coarse.n_vertices < g.n_vertices

    def test_cmap_maps_all_vertices(self):
        g = random_connected_graph(40, 40, seed=5)
        lvl = coarsen(g, np.random.default_rng(0))
        assert lvl.cmap.min() >= 0
        assert lvl.cmap.max() == lvl.coarse.n_vertices - 1

    def test_cut_preserved_under_projection(self):
        """Edge-cut of a coarse partition equals the cut of its projection."""
        g = random_connected_graph(60, 90, seed=6)
        lvl = coarsen(g, np.random.default_rng(0))
        cpart = np.random.default_rng(1).integers(0, 3, lvl.coarse.n_vertices)
        fpart = cpart[lvl.cmap]
        assert edge_cut(lvl.coarse, cpart) == edge_cut(g, fpart)


class TestInitialPartition:
    def test_all_parts_nonempty(self):
        g = random_connected_graph(40, 40, seed=7)
        part = initial_partition(g, 4, np.random.default_rng(0))
        assert set(part.tolist()) == {0, 1, 2, 3}

    def test_k1_trivial(self):
        g = paper_graph()
        part = initial_partition(g, 1, np.random.default_rng(0))
        assert np.all(part == 0)

    def test_k_ge_n(self):
        g = WeightedGraph.from_edges(3, [(0, 1), (1, 2)])
        part = initial_partition(g, 5, np.random.default_rng(0))
        assert len(set(part.tolist())) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            initial_partition(paper_graph(), 0, np.random.default_rng(0))


class TestRefine:
    def test_never_worsens_cut_without_anchor(self):
        g = random_connected_graph(50, 80, seed=8)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 3, 50)
        part = rebalance(g, part, 3, tol=1.2, rng=rng)
        before = edge_cut(g, part)
        refined = refine_partition(g, part, 3, tol=1.2, rng=rng)
        assert edge_cut(g, refined) <= before

    def test_respects_balance_limit(self):
        g = random_connected_graph(60, 80, seed=9, max_vw=3)
        rng = np.random.default_rng(0)
        part = partition_kway(g, 3, tol=1.05, seed=0).part
        w = part_weights(g, part, 3)
        assert w.max() <= 1.05 * g.total_vwgt / 3 + g.vwgt.max()

    def test_rebalance_fixes_overweight(self):
        g = random_connected_graph(40, 50, seed=10, max_vw=2)
        part = np.zeros(40, dtype=np.int64)  # everything on part 0
        fixed = rebalance(g, part, 4, tol=1.10)
        assert load_imbalance(g, fixed, 4) <= 1.35  # far better than 4.0

    def test_anchor_discourages_migration(self):
        g = random_connected_graph(60, 100, seed=11)
        base = partition_kway(g, 3, seed=0).part
        rng = np.random.default_rng(1)
        noisy = base.copy()
        flip = rng.choice(60, size=10, replace=False)
        noisy[flip] = rng.integers(0, 3, 10)
        sticky = refine_partition(g, noisy, 3, anchor=base, migration_factor=10.0,
                                  rng=np.random.default_rng(2))
        loose = refine_partition(g, noisy, 3, rng=np.random.default_rng(2))
        assert migration_volume(g, base, sticky) <= migration_volume(g, base, loose)


class TestPartitionKway:
    def test_paper_graph_three_clusters(self):
        """Fig. 4 analogue: 9 subsystems onto 3 clusters, near-balanced."""
        g = paper_graph().with_weights(ewgt_map=lambda u, v: 1)
        res = partition_kway(g, 3, seed=0)
        assert res.k == 3
        sizes = [len(p) for p in res.parts()]
        assert sorted(sizes) == [3, 3, 3]
        # paper reports 1.035; anything at or under METIS' 1.05 passes
        assert res.imbalance <= 1.06

    def test_partition_is_complete(self):
        g = random_connected_graph(80, 120, seed=12)
        res = partition_kway(g, 5, seed=0)
        assert len(res.part) == 80
        assert set(res.part.tolist()) <= set(range(5))

    def test_beats_random_partition(self):
        g = random_connected_graph(200, 400, seed=13)
        res = partition_kway(g, 4, seed=0)
        rng = np.random.default_rng(99)
        random_cuts = [edge_cut(g, rng.integers(0, 4, 200)) for _ in range(5)]
        assert res.edge_cut < min(random_cuts)

    def test_deterministic_by_seed(self):
        g = random_connected_graph(80, 120, seed=14)
        a = partition_kway(g, 4, seed=7)
        b = partition_kway(g, 4, seed=7)
        assert np.array_equal(a.part, b.part)

    def test_k1(self):
        g = paper_graph()
        res = partition_kway(g, 1)
        assert res.edge_cut == 0
        assert res.imbalance == pytest.approx(1.0)

    def test_empty_graph(self):
        g = WeightedGraph.from_edges(0, np.zeros((0, 2)))
        res = partition_kway(g, 3)
        assert len(res.part) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_kway(paper_graph(), 0)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(10, 120),
        k=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    def test_property_valid_partitions(self, n, k, seed):
        """Property: output is always a complete partition within a sane
        balance envelope, regardless of graph shape."""
        g = random_connected_graph(n, n // 2, seed=seed)
        res = partition_kway(g, k, seed=seed)
        assert len(res.part) == n
        assert res.part.min() >= 0 and res.part.max() < k
        assert edge_cut(g, res.part) == res.edge_cut
        # imbalance never exceeds tol by more than one max vertex weight
        limit = 1.05 * g.total_vwgt / k + g.vwgt.max()
        assert part_weights(g, res.part, k).max() <= limit


class TestRepartition:
    def test_zero_change_when_weights_unchanged(self):
        g = paper_graph().with_weights(ewgt_map=lambda u, v: 1)
        base = partition_kway(g, 3, seed=0)
        res = repartition(g, 3, base.part, migration_factor=5.0, seed=0)
        assert migration_volume(g, base.part, res.part) == 0

    def test_adapts_to_new_weights(self):
        """Fig. 4 → Fig. 5 analogue: switching on communication weights may
        move a subsystem or two but must stay balanced."""
        g_step1 = paper_graph().with_weights(ewgt_map=lambda u, v: 1)
        base = partition_kway(g_step1, 3, seed=0)
        g_step2 = paper_graph()  # full Table I edge weights
        res = repartition(g_step2, 3, base.part, seed=0)
        assert res.imbalance <= 1.12  # paper's step-2 value is 1.079
        moved = migration_volume(g_step2, base.part, res.part)
        assert moved <= g_step2.total_vwgt // 3  # small migration

    def test_rebalances_after_weight_shift(self):
        g = random_connected_graph(50, 80, seed=15)
        base = partition_kway(g, 3, seed=0).part
        # inflate weights of partition-0 vertices: the old mapping overloads
        new_vwgt = g.vwgt.copy()
        new_vwgt[base == 0] *= 5
        g2 = g.with_weights(vwgt=new_vwgt)
        res = repartition(g2, 3, base, seed=0)
        assert load_imbalance(g2, res.part, 3) < load_imbalance(g2, base, 3)

    def test_old_part_validated(self):
        g = paper_graph()
        with pytest.raises(ValueError):
            repartition(g, 3, np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            repartition(g, 2, np.full(9, 5))


class TestMetrics:
    def test_edge_cut_zero_single_part(self):
        g = paper_graph()
        assert edge_cut(g, np.zeros(9, dtype=int)) == 0

    def test_edge_cut_counts_weights(self):
        g = WeightedGraph.from_edges(2, [(0, 1)], ewgt=[7])
        assert edge_cut(g, np.array([0, 1])) == 7

    def test_migration_volume(self):
        g = paper_graph()
        a = np.zeros(9, dtype=int)
        b = a.copy()
        b[0] = 1
        assert migration_volume(g, a, b) == 14

    def test_imbalance_perfect(self):
        g = WeightedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert load_imbalance(g, np.array([0, 0, 1, 1]), 2) == pytest.approx(1.0)
