"""Tests for distributed bad-data detection and telemetry failure injection."""

import numpy as np
import pytest

from repro.dse import (
    DistributedStateEstimator,
    decompose,
    distributed_bad_data,
    dse_pmu_placement,
)
from repro.estimation import estimate_state, is_observable
from repro.grid import run_ac_power_flow
from repro.measurements import (
    MeasType,
    drop_region,
    drop_rtu,
    full_placement,
    generate_measurements,
    inject_bad_data,
    random_rtu_dropout,
)


@pytest.fixture(scope="module")
def bd_setup(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    return dec, ms


def _internal_vmag_row(dec, ms, s):
    """A V_MAG row metered strictly inside subsystem ``s``."""
    own = set(dec.buses(s).tolist()) - set(dec.boundary_buses(s).tolist())
    for row, m in enumerate(ms):
        if m.mtype == MeasType.V_MAG and m.element in own:
            return row
    raise AssertionError("no internal V_MAG found")


class TestDistributedBadData:
    def test_clean_telemetry_all_pass(self, bd_setup):
        dec, ms = bd_setup
        report = distributed_bad_data(dec, ms)
        assert report.suspect_subsystems == []
        assert report.removed_global_rows == []
        assert report.clean_after_identification

    def test_locality_of_detection(self, bd_setup):
        """A gross error inside one subsystem flags only that subsystem."""
        dec, ms = bd_setup
        rng = np.random.default_rng(1)
        row = _internal_vmag_row(dec, ms, 4)
        bad = inject_bad_data(ms, np.array([row]), magnitude_sigmas=30, rng=rng)
        report = distributed_bad_data(dec, bad)
        assert report.suspect_subsystems == [4]

    def test_identified_row_is_the_injected_one(self, bd_setup):
        dec, ms = bd_setup
        rng = np.random.default_rng(2)
        row = _internal_vmag_row(dec, ms, 2)
        bad = inject_bad_data(ms, np.array([row]), magnitude_sigmas=30, rng=rng)
        report = distributed_bad_data(dec, bad)
        assert report.removed_global_rows == [row]
        assert report.clean_after_identification

    def test_cleaned_set_estimates_well(self, bd_setup, pf118, net118):
        dec, ms = bd_setup
        rng = np.random.default_rng(3)
        rows = [_internal_vmag_row(dec, ms, s) for s in (1, 6)]
        bad = inject_bad_data(ms, np.array(rows), magnitude_sigmas=30, rng=rng)
        report = distributed_bad_data(dec, bad)
        keep = np.ones(len(bad), dtype=bool)
        keep[report.removed_global_rows] = False
        clean = bad.subset(keep)
        res = estimate_state(net118, clean)
        assert res.state_error(pf118.Vm, pf118.Va)["vm_rmse"] < 1e-3

    def test_multiple_subsystems_flagged(self, bd_setup):
        dec, ms = bd_setup
        rng = np.random.default_rng(4)
        rows = [_internal_vmag_row(dec, ms, s) for s in (1, 6)]
        bad = inject_bad_data(ms, np.array(rows), magnitude_sigmas=30, rng=rng)
        report = distributed_bad_data(dec, bad)
        assert report.suspect_subsystems == [1, 6]

    def test_detect_only_mode(self, bd_setup):
        dec, ms = bd_setup
        rng = np.random.default_rng(5)
        row = _internal_vmag_row(dec, ms, 3)
        bad = inject_bad_data(ms, np.array([row]), magnitude_sigmas=30, rng=rng)
        report = distributed_bad_data(dec, bad, identify=False)
        assert report.suspect_subsystems == [3]
        assert report.removed_global_rows == []


class TestFailureInjection:
    def test_drop_rtu_removes_all_bus_channels(self, net118, pf118):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        sub, rows = drop_rtu(net118, ms, [7])
        for m in sub:
            if m.mtype.is_bus:
                assert m.element != 7
            elif m.mtype in (MeasType.P_FLOW_F, MeasType.Q_FLOW_F, MeasType.I_MAG_F):
                assert net118.f[m.element] != 7
            else:
                assert net118.t[m.element] != 7
        assert len(sub) + len(rows) == len(ms)

    def test_estimation_survives_single_rtu_loss(self, net118, pf118):
        """Redundancy covers one lost RTU: estimate stays within accuracy."""
        rng = np.random.default_rng(1)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        sub, _ = drop_rtu(net118, ms, [42])
        assert is_observable(net118, sub)
        res = estimate_state(net118, sub)
        assert res.state_error(pf118.Vm, pf118.Va)["vm_rmse"] < 2e-3

    def test_drop_region_whole_subsystem(self, net118, pf118, bd_setup):
        """Losing a whole region's telemetry leaves it unobservable —
        exactly why DSE exchanges boundary data."""
        dec, _ = bd_setup
        rng = np.random.default_rng(2)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        sub, rows = drop_region(net118, ms, dec.buses(0))
        assert len(rows) > 0
        assert not is_observable(net118, sub)

    def test_drop_region_dse_degrades_instead_of_crashing(
        self, bd_setup, net118
    ):
        """Losing the telemetry of subsystem 0's internal buses makes its
        local Step-1 problem unobservable; with ``degrade_on_failure`` the
        distributed run completes with that subsystem flagged instead of
        aborting the whole frame."""
        dec, ms = bd_setup
        internal = np.setdiff1d(dec.buses(0), dec.boundary_buses(0))
        sub, rows = drop_region(net118, ms, internal)
        assert len(rows) > 0
        dse = DistributedStateEstimator(
            dec, sub, auto_anchor=False, degrade_on_failure=True
        )
        res = dse.run()
        assert 0 in res.degraded_subsystems
        assert res.records[0].failures
        # degraded sites fall back to prior state: everything stays finite
        assert np.all(np.isfinite(res.Vm)) and np.all(np.isfinite(res.Va))

    def test_drop_region_dse_raises_without_degrade_flag(
        self, bd_setup, net118
    ):
        dec, ms = bd_setup
        internal = np.setdiff1d(dec.buses(0), dec.boundary_buses(0))
        sub, _ = drop_region(net118, ms, internal)
        dse = DistributedStateEstimator(dec, sub, auto_anchor=False)
        with pytest.raises(Exception):
            dse.run()

    def test_random_dropout_protect_list(self, net118, pf118):
        rng = np.random.default_rng(3)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        protect = np.arange(20)
        _, lost = random_rtu_dropout(
            net118, ms, probability=0.5, rng=rng, protect=protect
        )
        assert set(lost.tolist()).isdisjoint(set(protect.tolist()))

    def test_dropout_probability_zero(self, net118, pf118):
        rng = np.random.default_rng(4)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        surv, lost = random_rtu_dropout(net118, ms, probability=0.0, rng=rng)
        assert len(lost) == 0
        assert len(surv) == len(ms)

    def test_validation(self, net118, pf118):
        rng = np.random.default_rng(5)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        with pytest.raises(ValueError):
            drop_rtu(net118, ms, [9999])
        with pytest.raises(ValueError):
            random_rtu_dropout(net118, ms, probability=1.5)
