"""Integration tests: session bad-data policy, contingency CLI, QoS stats."""

import time

import numpy as np
import pytest

from repro.core import ArchitecturePrototype, DseSession
from repro.dse import dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import (
    MeasType,
    full_placement,
    generate_measurements,
    inject_bad_data,
)
from repro.middleware import MiddlewareFabric
from repro.tools.contingency import main as contingency_main


@pytest.fixture(scope="module")
def arch_bd():
    arch = ArchitecturePrototype.assemble(case118(), m_subsystems=9, seed=0)
    yield arch
    arch.close()


@pytest.fixture(scope="module")
def frame_bd(arch_bd):
    net = arch_bd.net
    pf = run_ac_power_flow(net)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(arch_bd.dec))
    return pf, generate_measurements(net, plac, pf, rng=rng)


def _internal_row(dec, ms, s):
    own = set(dec.buses(s).tolist()) - set(dec.boundary_buses(s).tolist())
    return next(
        r for r, m in enumerate(ms)
        if m.mtype == MeasType.V_MAG and m.element in own
    )


class TestSessionBadDataPolicy:
    def test_policy_off_reports_nothing(self, arch_bd, frame_bd):
        pf, ms = frame_bd
        session = DseSession(arch_bd)
        rep = session.process_frame(ms)
        assert rep.bad_data is None

    def test_detect_flags_suspects(self, arch_bd, frame_bd):
        pf, ms = frame_bd
        rng = np.random.default_rng(1)
        row = _internal_row(arch_bd.dec, ms, 5)
        bad = inject_bad_data(ms, np.array([row]), magnitude_sigmas=30, rng=rng)
        session = DseSession(arch_bd, bad_data_policy="detect")
        rep = session.process_frame(bad)
        assert rep.bad_data.suspect_subsystems == [5]
        # detect-only: nothing removed
        assert rep.bad_data.removed_global_rows == []

    def test_identify_cleans_frame(self, arch_bd, frame_bd):
        pf, ms = frame_bd
        rng = np.random.default_rng(2)
        row = _internal_row(arch_bd.dec, ms, 2)
        bad = inject_bad_data(ms, np.array([row]), magnitude_sigmas=30, rng=rng)
        session = DseSession(arch_bd, bad_data_policy="identify")
        rep = session.process_frame(bad, truth=(pf.Vm, pf.Va))
        assert rep.bad_data.removed_global_rows == [row]
        assert rep.vm_rmse_vs_truth < 2e-3

    def test_identify_beats_off_under_corruption(self, arch_bd, frame_bd):
        pf, ms = frame_bd
        rng = np.random.default_rng(3)
        rows = [_internal_row(arch_bd.dec, ms, s) for s in (1, 7)]
        bad = inject_bad_data(ms, np.array(rows), magnitude_sigmas=30, rng=rng)
        off = DseSession(arch_bd).process_frame(bad, truth=(pf.Vm, pf.Va))
        fix = DseSession(arch_bd, bad_data_policy="identify").process_frame(
            bad, truth=(pf.Vm, pf.Va)
        )
        assert fix.vm_rmse_vs_truth <= off.vm_rmse_vs_truth

    def test_policy_validated(self, arch_bd):
        with pytest.raises(ValueError):
            DseSession(arch_bd, bad_data_policy="maybe")


class TestContingencyCli:
    def test_default_run(self, capsys):
        assert contingency_main(["--case", "case14", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "N-1" in out
        assert "worst" in out

    def test_static_scheme(self, capsys):
        assert contingency_main(
            ["--case", "case14", "--scheme", "static", "--top", "2"]
        ) == 0


class TestPipelineQoS:
    def test_latency_stats_populated(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")]) as fab:
            for _ in range(5):
                fab.send("a", "b", b"payload")
                fab.recv("b", timeout=2)
            time.sleep(0.05)
            stats = fab.pipelines[("a", "b")].components[0].latency_stats()
        assert stats["count"] == 5
        assert 0 < stats["mean"] < 1.0
        assert stats["p50"] <= stats["p95"] <= stats["max"]

    def test_empty_stats(self):
        from repro.middleware import MifComponent

        stats = MifComponent("idle").latency_stats()
        assert stats["count"] == 0
