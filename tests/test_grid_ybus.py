"""Unit tests for admittance construction."""

import numpy as np
import pytest

from repro.grid import branch_admittances, build_yf_yt, build_ybus
from repro.grid.cases import case4, case4_dict, case14, case118
from repro.grid.network import Network


class TestYbusStructure:
    def test_shape_and_dtype(self, net14):
        y = build_ybus(net14)
        assert y.shape == (14, 14)
        assert np.iscomplexobj(y.toarray())

    def test_symmetric_without_shifters(self, net118):
        # case118 has taps but no phase shifters -> Ybus is structurally
        # symmetric but not value-symmetric; with no taps it is symmetric.
        net = case4()
        y = build_ybus(net).toarray()
        assert np.allclose(y, y.T)

    def test_row_sums_equal_shunt_when_no_charging(self):
        # A network with no line charging and no shunts: each row of Ybus
        # sums to ~0 (Kirchhoff).
        d = case4_dict()
        for row in d["branch"]:
            row[4] = 0.0
        net = Network.from_case(d)
        y = build_ybus(net).toarray()
        assert np.allclose(y.sum(axis=1), 0, atol=1e-12)

    def test_bus_shunt_appears_on_diagonal(self):
        d = case4_dict()
        d["bus"][2][5] = 25.0  # 25 MVAr shunt at bus 3
        net = Network.from_case(d)
        y_with = build_ybus(net).toarray()
        y_wo = build_ybus(case4()).toarray()
        delta = y_with - y_wo
        assert delta[2, 2] == pytest.approx(0.25j)
        delta[2, 2] = 0
        assert np.allclose(delta, 0)

    def test_out_of_service_branch_excluded(self):
        d = case4_dict()
        d["branch"][0][10] = 0
        net = Network.from_case(d)
        y = build_ybus(net).toarray()
        assert y[0, 1] == pytest.approx(0.0)


class TestBranchAdmittances:
    def test_line_terms_match_pi_model(self, net4):
        adm = branch_admittances(net4)
        k = 0  # branch 1-2: r=.01 x=.05 b=.02
        ys = 1 / (0.01 + 0.05j)
        assert adm.ytt[k] == pytest.approx(ys + 0.01j)
        assert adm.yff[k] == pytest.approx(ys + 0.01j)
        assert adm.yft[k] == pytest.approx(-ys)
        assert adm.ytf[k] == pytest.approx(-ys)

    def test_tap_scales_from_side(self, net14):
        adm = branch_admittances(net14)
        k = 7  # 4-7 transformer, tap 0.978, x=0.20912
        ys = 1 / 0.20912j
        assert adm.yff[k] == pytest.approx(ys / 0.978**2)
        assert adm.yft[k] == pytest.approx(-ys / 0.978)
        assert adm.ytt[k] == pytest.approx(ys)

    def test_phase_shift_breaks_reciprocity(self):
        d = case4_dict()
        d["branch"][0][9] = 10.0  # degrees
        net = Network.from_case(d)
        adm = branch_admittances(net)
        assert adm.yft[0] != pytest.approx(adm.ytf[0])
        # magnitudes still agree
        assert abs(adm.yft[0]) == pytest.approx(abs(adm.ytf[0]))

    def test_dead_branch_zeroed(self):
        d = case4_dict()
        d["branch"][2][10] = 0
        net = Network.from_case(d)
        adm = branch_admittances(net)
        for term in (adm.yff, adm.yft, adm.ytf, adm.ytt):
            assert term[2] == 0


class TestYfYt:
    def test_flow_consistency_with_ybus(self, net118):
        """Σ branch + shunt current at each bus equals Ybus @ V."""
        rng = np.random.default_rng(0)
        n = net118.n_bus
        V = (1 + 0.05 * rng.standard_normal(n)) * np.exp(
            1j * 0.1 * rng.standard_normal(n)
        )
        ybus = build_ybus(net118)
        yf, yt = build_yf_yt(net118)
        i_f = yf @ V
        i_t = yt @ V
        i_bus = np.zeros(n, dtype=complex)
        np.add.at(i_bus, net118.f, i_f)
        np.add.at(i_bus, net118.t, i_t)
        i_bus += (net118.Gs + 1j * net118.Bs) * V
        assert np.allclose(i_bus, ybus @ V, atol=1e-12)

    def test_shapes(self, net14):
        yf, yt = build_yf_yt(net14)
        assert yf.shape == (20, 14)
        assert yt.shape == (20, 14)
