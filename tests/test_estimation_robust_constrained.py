"""Tests for the Huber robust estimator and constrained WLS."""

import numpy as np
import pytest

from repro.estimation import (
    constrained_estimate,
    estimate_state,
    huber_estimate,
    zero_injection_buses,
)
from repro.measurements import (
    DEFAULT_SIGMAS,
    Measurement,
    MeasType,
    MeasurementModel,
    MeasurementSet,
    full_placement,
    generate_measurements,
    inject_bad_data,
)


class TestHuber:
    def test_matches_wls_on_clean_data(self, net14, pf14):
        """With no outliers the Huber estimate coincides with WLS."""
        rng = np.random.default_rng(0)
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.3, rng=rng
        )
        wls = estimate_state(net14, ms)
        hub = huber_estimate(net14, ms, gamma=3.0)
        assert hub.converged
        assert np.allclose(hub.Vm, wls.Vm, atol=2e-4)
        assert np.allclose(hub.Va, wls.Va, atol=2e-4)

    def test_resists_gross_errors(self, net118, pf118):
        """Gross errors hurt Huber far less than plain WLS."""
        rng = np.random.default_rng(1)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        bad = inject_bad_data(
            ms, np.array([30, 150, 400]), magnitude_sigmas=25, rng=rng
        )
        wls_err = estimate_state(net118, bad).state_error(pf118.Vm, pf118.Va)
        hub_err = huber_estimate(net118, bad).state_error(pf118.Vm, pf118.Va)
        assert hub_err["vm_rmse"] < wls_err["vm_rmse"]
        assert hub_err["vm_max"] < wls_err["vm_max"]

    def test_zero_noise_exact(self, net14, pf14):
        rng = np.random.default_rng(2)
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        res = huber_estimate(net14, ms)
        assert np.allclose(res.Vm, pf14.Vm, atol=1e-9)

    def test_gamma_validated(self, net14, pf14):
        rng = np.random.default_rng(3)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        with pytest.raises(ValueError):
            huber_estimate(net14, ms, gamma=0.0)

    def test_underdetermined_rejected(self, net14):
        ms = MeasurementSet([Measurement(MeasType.V_MAG, 0, 1.0, 0.01)])
        with pytest.raises(Exception):
            huber_estimate(net14, ms)


class TestZeroInjectionDetection:
    def test_case118_known_buses(self, net118):
        zi = zero_injection_buses(net118)
        ids = set(net118.bus_ids[zi].tolist())
        # the passive 345 kV interconnection buses of the 118 system
        assert ids == {9, 30, 38, 63, 64, 68, 71, 81}

    def test_case14_bus7(self, net14):
        zi = zero_injection_buses(net14)
        assert 7 in net14.bus_ids[zi].tolist()

    def test_gen_bus_not_zero_injection(self, net14):
        zi = set(net14.bus_ids[zero_injection_buses(net14)].tolist())
        for gb in net14.bus_ids[net14.gen_bus]:
            assert int(gb) not in zi


class TestConstrainedEstimate:
    def _violation(self, net, res):
        zi = zero_injection_buses(net)
        cset = MeasurementSet(
            [Measurement(MeasType.P_INJ, int(b), 0.0, 0.01) for b in zi]
            + [Measurement(MeasType.Q_INJ, int(b), 0.0, 0.01) for b in zi]
        )
        cm = MeasurementModel(net, cset)
        return float(np.abs(cm.h(res.Vm, res.Va)).max())

    def test_constraints_enforced_exactly(self, net118, pf118):
        rng = np.random.default_rng(4)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        res = constrained_estimate(net118, ms)
        assert res.converged
        assert self._violation(net118, res) < 1e-9

    def test_tighter_than_unconstrained(self, net118, pf118):
        rng = np.random.default_rng(5)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        plain = estimate_state(net118, ms)
        con = constrained_estimate(net118, ms)
        assert self._violation(net118, con) < self._violation(net118, plain)

    def test_accuracy_not_worse(self, net118, pf118):
        rng = np.random.default_rng(6)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        plain = estimate_state(net118, ms).state_error(pf118.Vm, pf118.Va)
        con = constrained_estimate(net118, ms).state_error(pf118.Vm, pf118.Va)
        # hard constraints inject true information: at worst break-even
        assert con["vm_rmse"] <= plain["vm_rmse"] * 1.05

    def test_explicit_bus_list(self, net14, pf14):
        rng = np.random.default_rng(7)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        zi = zero_injection_buses(net14)
        res = constrained_estimate(net14, ms, zi)
        assert res.converged

    def test_no_constraints_degenerates_to_wls(self, net14, pf14):
        rng = np.random.default_rng(8)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        res = constrained_estimate(net14, ms, np.array([], dtype=np.int64))
        wls = estimate_state(net14, ms)
        assert np.allclose(res.Vm, wls.Vm, atol=1e-8)
        assert np.allclose(res.Va, wls.Va, atol=1e-8)
