"""Cross-cutting property and fuzz tests (hypothesis).

These target the invariants that hold for *any* input: wire-format
round-trips, event-ordering determinism, partition validity under weight
fuzzing, and estimation consistency on randomized measurement subsets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimEngine, Timeout
from repro.estimation import estimate_state, is_observable
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14
from repro.measurements import (
    MeasType,
    full_placement,
    generate_measurements,
)
from repro.middleware import (
    InprocTransport,
    pack_state_update,
    unpack_state_update,
)
from repro.partition import (
    WeightedGraph,
    edge_cut,
    load_imbalance,
    partition_kway,
    repartition,
)


class TestWireFormatProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(0, 200),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_state_update_roundtrip(self, n, seed):
        """Property: pack → unpack is the identity for any payload."""
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 10_000, n)
        vm = rng.uniform(0.5, 1.5, n)
        va = rng.uniform(-np.pi, np.pi, n)
        ids2, vm2, va2 = unpack_state_update(pack_state_update(ids, vm, va))
        assert np.array_equal(ids, ids2)
        assert np.array_equal(vm, vm2)
        assert np.array_equal(va, va2)

    @settings(max_examples=30, deadline=None)
    @given(payload=st.binary(max_size=4096))
    def test_inproc_transport_preserves_bytes(self, payload):
        """Property: any byte string survives the transport unchanged."""
        t = InprocTransport()
        listener = t.listen("inproc://fuzz")
        client = t.connect("inproc://fuzz")
        server = listener.accept(timeout=1)
        client.send_bytes(payload)
        assert server.recv_bytes(timeout=1) == payload
        listener.close()


class TestSimEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(0, 100, allow_nan=False), max_size=30))
    def test_events_fire_in_time_order(self, delays):
        """Property: callbacks always run in non-decreasing virtual time."""
        eng = SimEngine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=20, deadline=None)
    @given(
        sleeps=st.lists(st.floats(0.001, 10, allow_nan=False),
                        min_size=1, max_size=10),
    )
    def test_process_total_time_is_sum_of_sleeps(self, sleeps):
        """Property: a process's finish time equals its summed timeouts."""
        eng = SimEngine()

        def proc():
            for s in sleeps:
                yield Timeout(s)

        eng.process(proc())
        assert eng.run() == pytest.approx(sum(sleeps))


class TestPartitionProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 5),
        weight_scale=st.integers(1, 50),
    )
    def test_repartition_valid_under_weight_fuzz(self, seed, k, weight_scale):
        """Property: repartitioning after arbitrary weight changes always
        yields a complete, in-range partition."""
        rng = np.random.default_rng(seed)
        n = 20
        edges = {(int(rng.integers(0, i)), i) for i in range(1, n)}
        g = WeightedGraph.from_edges(n, sorted(edges),
                                     vwgt=rng.integers(1, weight_scale + 1, n))
        base = partition_kway(g, k, seed=seed).part
        g2 = g.with_weights(vwgt=rng.integers(1, weight_scale + 1, n))
        res = repartition(g2, k, base, seed=seed)
        assert len(res.part) == n
        assert res.part.min() >= 0 and res.part.max() < k
        assert res.edge_cut == edge_cut(g2, res.part)
        assert res.imbalance == pytest.approx(load_imbalance(g2, res.part, k))


class TestEstimationProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), drop_frac=st.floats(0.0, 0.4))
    def test_estimation_stable_under_measurement_loss(self, seed, drop_frac):
        """Property: randomly dropping redundant channels (while staying
        observable) still yields an estimate within measurement accuracy."""
        net = case14()
        pf = run_ac_power_flow(net)
        rng = np.random.default_rng(seed)
        ms = generate_measurements(net, full_placement(net), pf, rng=rng)
        keep = rng.random(len(ms)) >= drop_frac
        # never drop below a safety margin of redundancy
        if keep.sum() < 60:
            keep[:] = True
        sub = ms.subset(keep)
        if not is_observable(net, sub):
            return  # rare unobservable draw: out of scope for this property
        from repro.estimation import EstimationError

        try:
            res = estimate_state(net, sub)
        except EstimationError:
            # borderline-observable draw (rank test passes at tolerance but
            # the gain factorisation is numerically singular): out of scope
            return
        assert res.converged
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 1e-2
