"""Tests for the discrete-event engine, simulated MPI and executors."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    ClusterTopology,
    LinkSpec,
    MessageSpec,
    MiddlewareCostModel,
    SimComm,
    SimEngine,
    SimExecutor,
    TaskSpec,
    ThreadExecutor,
    Timeout,
    WlsCostModel,
    calibrate_wls_cost,
    pnnl_testbed,
)


class TestSimEngine:
    def test_time_advances_with_schedule(self):
        eng = SimEngine()
        hits = []
        eng.schedule(1.0, lambda: hits.append(eng.now))
        eng.schedule(2.5, lambda: hits.append(eng.now))
        assert eng.run() == 2.5
        assert hits == [1.0, 2.5]

    def test_negative_delay_rejected(self):
        eng = SimEngine()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)

    def test_deterministic_tie_break(self):
        eng = SimEngine()
        order = []
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(1.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b"]

    def test_process_timeout(self):
        eng = SimEngine()
        log = []

        def proc():
            yield Timeout(2.0)
            log.append(eng.now)
            yield Timeout(3.0)
            log.append(eng.now)

        eng.process(proc())
        eng.run()
        assert log == [2.0, 5.0]

    def test_process_result(self):
        eng = SimEngine()

        def proc():
            yield Timeout(1.0)
            return 42

        p = eng.process(proc())
        eng.run()
        assert p.done
        assert p.result == 42

    def test_event_wakes_waiter_with_value(self):
        eng = SimEngine()
        ev = eng.event()
        got = []

        def waiter():
            v = yield ev
            got.append((eng.now, v))

        eng.process(waiter())
        eng.schedule(4.0, ev.succeed, "hello")
        eng.run()
        assert got == [(4.0, "hello")]

    def test_event_double_trigger_rejected(self):
        eng = SimEngine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_run_until(self):
        eng = SimEngine()
        eng.schedule(10.0, lambda: None)
        t = eng.run(until=5.0)
        assert t == 5.0

    def test_unsupported_yield_raises(self):
        eng = SimEngine()

        def proc():
            yield "bogus"

        eng.process(proc())
        with pytest.raises(TypeError):
            eng.run()


class TestTopology:
    def test_link_symmetric_lookup(self):
        topo = pnnl_testbed()
        assert topo.link("nwiceb", "chinook") is topo.link("chinook", "nwiceb")

    def test_loopback_for_same_cluster(self):
        topo = pnnl_testbed()
        assert topo.link("nwiceb", "nwiceb") is topo.loopback

    def test_transfer_time_formula(self):
        link = LinkSpec(latency=0.001, bandwidth=1e6)
        assert link.transfer_time(1e6) == pytest.approx(1.001)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            ClusterSpec(name="x", nodes=0)
        with pytest.raises(ValueError):
            ClusterTopology(clusters=[ClusterSpec("a"), ClusterSpec("a")])

    def test_unknown_cluster_in_add_link(self):
        topo = pnnl_testbed()
        with pytest.raises(KeyError):
            topo.add_link("nwiceb", "nonexistent", LinkSpec(0.001, 1e9))

    def test_testbed_shape(self):
        topo = pnnl_testbed()
        assert topo.n_clusters == 3
        assert topo.cluster("chinook").total_cores == 128


class TestSimComm:
    def _setup(self):
        eng = SimEngine()
        topo = pnnl_testbed()
        comm = SimComm(eng, topo, ["nwiceb", "chinook"])
        return eng, comm

    def test_send_recv_payload(self):
        eng, comm = self._setup()
        got = []

        def sender():
            yield from comm.send(1, {"x": 7}, nbytes=1000, src=0)

        def receiver():
            msg = yield from comm.recv(0, dst=1)
            got.append((eng.now, msg))

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        assert got[0][1] == {"x": 7}
        # wire time for 1000 bytes on the testbed LAN
        expected = 2e-4 + 1000 / 115e6
        assert got[0][0] == pytest.approx(expected, rel=1e-6)

    def test_recv_before_send_blocks(self):
        eng, comm = self._setup()
        got = []

        def receiver():
            msg = yield from comm.recv(0, dst=1)
            got.append(eng.now)

        def sender():
            yield Timeout(1.0)
            yield from comm.send(1, "late", nbytes=100, src=0)

        eng.process(receiver())
        eng.process(sender())
        eng.run()
        assert got[0] >= 1.0

    def test_intra_cluster_faster_than_inter(self):
        eng = SimEngine()
        topo = pnnl_testbed()
        comm = SimComm(eng, topo, ["nwiceb", "nwiceb", "chinook"])
        nbytes = 1e6
        assert comm.transfer_time(0, 1, nbytes) < comm.transfer_time(0, 2, nbytes)

    def test_bcast_gather(self):
        eng, comm = self._setup()
        results = {}

        def node(rank):
            v = yield from comm.bcast(0, "cfg" if rank == 0 else None,
                                      nbytes=100, rank=rank)
            results[rank] = v
            out = yield from comm.gather(0, rank * 10, nbytes=8, rank=rank)
            if rank == 0:
                results["gathered"] = out

        for r in range(2):
            eng.process(node(r))
        eng.run()
        assert results[0] == "cfg"
        assert results[1] == "cfg"
        assert results["gathered"] == [0, 10]

    def test_stats_accumulate(self):
        eng, comm = self._setup()

        def sender():
            yield from comm.send(1, None, nbytes=500, src=0)

        def receiver():
            yield from comm.recv(0, dst=1)

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        assert comm.stats_messages == 1
        assert comm.stats_bytes == 500

    def test_rank_validation(self):
        eng, comm = self._setup()

        def bad():
            yield from comm.send(5, None, nbytes=1, src=0)

        eng.process(bad())
        with pytest.raises(ValueError):
            eng.run()


class TestCostModels:
    def test_wls_cost_monotone_in_size(self):
        m = WlsCostModel()
        assert m.iteration_time(100) > m.iteration_time(10)

    def test_wls_cost_scales_with_speed(self):
        m = WlsCostModel()
        assert m.iteration_time(50, speed=2.0) == pytest.approx(
            m.iteration_time(50) / 2
        )

    def test_wls_cost_validation(self):
        m = WlsCostModel()
        with pytest.raises(ValueError):
            m.iteration_time(-1)
        with pytest.raises(ValueError):
            m.estimation_time(10, -1)

    def test_middleware_overhead_linear_in_size(self):
        mw = MiddlewareCostModel()
        link = LinkSpec(latency=1e-4, bandwidth=1e9)
        o1 = mw.overhead(1e6, link)
        o2 = mw.overhead(2e6, link)
        o4 = mw.overhead(4e6, link)
        # differences double: linear trend (Fig. 8)
        assert (o4 - o2) == pytest.approx(2 * (o2 - o1), rel=1e-6)

    def test_relayed_slower_than_direct(self):
        mw = MiddlewareCostModel()
        link = LinkSpec(latency=1e-4, bandwidth=1e9)
        assert mw.relayed_time(1e6, link) > mw.direct_time(1e6, link)

    def test_calibration_produces_sane_model(self):
        m = calibrate_wls_cost(sizes=(8, 16), repeats=1)
        assert m.setup > 0
        assert m.per_bus > 0
        assert m.iteration_time(14) < 1.0  # a 14-bus iteration is fast


class TestSimExecutor:
    def test_parallel_clusters(self):
        ex = SimExecutor(pnnl_testbed())
        tasks = [
            TaskSpec("a", "nwiceb", 2.0),
            TaskSpec("b", "chinook", 3.0),
        ]
        timing = ex.run_phase(tasks)
        assert timing.makespan == 3.0  # clusters overlap
        assert timing.per_cluster["nwiceb"] == 2.0

    def test_core_sharing_within_cluster(self):
        topo = ClusterTopology(
            clusters=[ClusterSpec(name="tiny", nodes=1, cores_per_node=1)]
        )
        ex = SimExecutor(topo)
        tasks = [TaskSpec(f"t{i}", "tiny", 1.0) for i in range(3)]
        timing = ex.run_phase(tasks)
        assert timing.makespan == pytest.approx(3.0)  # serialised on 1 core

    def test_multi_core_overlap(self):
        topo = ClusterTopology(
            clusters=[ClusterSpec(name="dual", nodes=1, cores_per_node=2)]
        )
        ex = SimExecutor(topo)
        tasks = [TaskSpec(f"t{i}", "dual", 1.0) for i in range(4)]
        assert ex.run_phase(tasks).makespan == pytest.approx(2.0)

    def test_exchange_middleware_overhead(self):
        ex = SimExecutor(pnnl_testbed())
        msgs = [MessageSpec("nwiceb", "chinook", 1e6)]
        with_mw = ex.run_exchange(msgs, use_middleware=True)
        without = ex.run_exchange(msgs, use_middleware=False)
        assert with_mw.makespan > without.makespan
        assert with_mw.total_bytes == 1e6

    def test_exchange_pairs_parallel(self):
        ex = SimExecutor(pnnl_testbed())
        msgs = [
            MessageSpec("nwiceb", "chinook", 1e6),
            MessageSpec("nwiceb", "catamount", 1e6),
        ]
        timing = ex.run_exchange(msgs, use_middleware=False)
        single = ex.run_exchange(msgs[:1], use_middleware=False)
        assert timing.makespan == pytest.approx(single.makespan)

    def test_empty_phase(self):
        ex = SimExecutor(pnnl_testbed())
        assert ex.run_phase([]).makespan == 0.0
        assert ex.run_exchange([]).makespan == 0.0

    def test_unknown_cluster_rejected(self):
        ex = SimExecutor(pnnl_testbed())
        with pytest.raises(KeyError):
            ex.run_phase([TaskSpec("x", "bogus", 1.0)])


class TestThreadExecutor:
    def test_results_ordered(self):
        ex = ThreadExecutor(max_workers=4)
        results, times, wall = ex.map(lambda x: x * x, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        assert len(times) == 4
        assert wall > 0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=0)
