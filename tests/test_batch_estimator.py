"""Copy-on-write scenario forking and the batched (SIMD) estimator.

The batched stack optimises a sweep of *nearly identical* problems:
scenarios are compact deltas against one base network, admittances /
measurement functions / Jacobians evaluate as batched kernels, and each
Gauss-Newton iteration performs one block-diagonal solve for the whole
batch.  The contract under test is *numerical equivalence with the serial
path*: bitwise for K=1 (delegated outright) and ≤1e-10 for K>1 — including
scenarios that do not converge, which must be reported identically.
"""

import dataclasses

import numpy as np
import pytest

from repro.contingency import (
    ContingencyAnalyzer,
    enumerate_n1,
    run_parallel,
)
from repro.contingency.screening import apply_outage, outage_delta
from repro.estimation import (
    BatchEstimator,
    BatchScenario,
    EstimationError,
    WlsEstimator,
)
from repro.estimation.outputs import area_interchange
from repro.grid import (
    DcCompensationSolver,
    DeltaError,
    NetworkDelta,
    run_dc_power_flow,
    run_dc_power_flow_batch,
)
from repro.grid.ybus import batch_branch_admittances, branch_admittances
from repro.measurements import full_placement, generate_measurements

# A 2-branch outage that keeps both bundled cases connected.
SAFE_PAIR = (0, 2)


def _mset(net, pf, seed=7):
    rng = np.random.default_rng(seed)
    return generate_measurements(net, full_placement(net), pf, rng=rng)


def _net_arrays_equal(a, b):
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y), f.name
        else:
            assert x == y, f.name


# ---------------------------------------------------------------------------
# NetworkDelta / fork
# ---------------------------------------------------------------------------
class TestNetworkDelta:
    def test_fork_matches_eager_copy_bitwise(self, net14):
        delta = NetworkDelta.branch_outage(0, 5).compose(
            NetworkDelta.load_override([2, 4], Pd=[0.3, 0.1], Qd=[0.05, 0.0])
        )
        forked = net14.fork(delta)
        eager = delta.materialize(net14)
        _net_arrays_equal(forked, eager)

    def test_fork_shares_untouched_arrays(self, net14):
        forked = net14.fork(NetworkDelta.branch_outage(3))
        # touched column is fresh, everything else is the base's own array
        assert forked.br_status is not net14.br_status
        assert forked.r is net14.r
        assert forked.x is net14.x
        assert forked.Pd is net14.Pd
        assert forked.Vm0 is net14.Vm0
        assert net14.br_status[3] == 1  # base untouched

    def test_empty_delta_fork_is_view(self, net14):
        forked = net14.fork()
        assert forked is not net14
        assert forked.br_status is net14.br_status

    def test_delta_cost_is_o_changes(self, net118):
        delta = NetworkDelta.branch_outage(7)
        # one (idx, val) pair — orders of magnitude below the full network
        assert delta.nbytes <= 16
        assert delta.n_changes == 1
        full = sum(
            getattr(net118, f.name).nbytes
            for f in dataclasses.fields(net118)
            if isinstance(getattr(net118, f.name), np.ndarray)
        )
        assert delta.nbytes < full / 100

    def test_compose_keeps_last_write(self):
        a = NetworkDelta.branch_status([1, 2], [0, 0])
        b = NetworkDelta.branch_status([2, 3], [1, 0])
        c = a.compose(b)
        status = {int(i): int(v) for i, v in zip(c.br_idx, c.br_val)}
        assert status == {1: 0, 2: 1, 3: 0}

    def test_payload_round_trip(self, net14):
        delta = NetworkDelta.branch_outage(1, label="ot").compose(
            NetworkDelta.v0_seed(Vm=net14.Vm0 * 1.01)
        )
        back = NetworkDelta.from_payload(delta.to_payload())
        _net_arrays_equal(net14.fork(delta), net14.fork(back))

    def test_branch_status_of(self, net14):
        delta = NetworkDelta.branch_outage(0, 4)
        status = delta.branch_status_of(net14)
        assert status[0] == 0 and status[4] == 0
        assert status.sum() == net14.br_status.sum() - 2

    def test_invalid_deltas_raise(self, net14):
        with pytest.raises(DeltaError):
            NetworkDelta(br_idx=np.array([0]), br_val=np.array([2], np.int8))
        with pytest.raises(DeltaError):
            NetworkDelta.branch_outage(-1)
        with pytest.raises(DeltaError):
            net14.fork(NetworkDelta.branch_outage(net14.n_branch))
        with pytest.raises(DeltaError):
            net14.fork(NetworkDelta.load_override(net14.n_bus, Pd=0.1))

    def test_apply_outage_is_cow_fork(self, net14):
        cons, _ = enumerate_n1(net14)
        forked = apply_outage(net14, cons[0])
        assert forked.r is net14.r
        assert forked.br_status[cons[0].branch] == 0


# ---------------------------------------------------------------------------
# Batched admittances / DC compensation
# ---------------------------------------------------------------------------
class TestBatchedGridKernels:
    def test_batch_admittances_match_serial(self, net118):
        deltas = [NetworkDelta.branch_outage(b) for b in (0, 2, 40)]
        status = np.stack([d.branch_status_of(net118) for d in deltas])
        adm = batch_branch_admittances(net118, status)
        for k, d in enumerate(deltas):
            ref = branch_admittances(net118.fork(d))
            assert np.array_equal(adm.yff[:, k], ref.yff)
            assert np.array_equal(adm.yft[:, k], ref.yft)
            assert np.array_equal(adm.ytf[:, k], ref.ytf)
            assert np.array_equal(adm.ytt[:, k], ref.ytt)

    def test_compensation_matches_refactor_sweep(self, net118):
        cons, _ = enumerate_n1(net118)
        deltas = [outage_delta(c) for c in cons]
        flows = run_dc_power_flow_batch(net118, deltas)
        for d, pf in zip(deltas, flows):
            ref = run_dc_power_flow(net118.fork(d))
            assert pf.converged
            assert np.allclose(pf.Pf, ref.Pf, atol=1e-10)
            assert np.allclose(pf.Va, ref.Va, atol=1e-10)

    def test_compensation_rank2_and_load(self, net14):
        delta = NetworkDelta.branch_outage(*SAFE_PAIR).compose(
            NetworkDelta.load_override([3], Pd=[0.7])
        )
        (pf,) = run_dc_power_flow_batch(net14, [delta])
        ref = run_dc_power_flow(net14.fork(delta))
        assert np.allclose(pf.Pf, ref.Pf, atol=1e-10)

    def test_compensation_flags_islanding(self, net14):
        cons, islanding = enumerate_n1(net14)
        assert islanding  # case14 has a radial branch
        solver = DcCompensationSolver(net14)
        (pf,) = solver.solve([outage_delta(islanding[0])])
        assert not pf.converged
        # every non-slack angle is poisoned; the slack reference stays 0
        nonslack = np.setdiff1d(np.arange(net14.n_bus), net14.slack_buses)
        assert np.isnan(pf.Va[nonslack]).all()


# ---------------------------------------------------------------------------
# BatchEstimator
# ---------------------------------------------------------------------------
class TestBatchEstimator:
    def test_k1_bitwise_identical(self, net14, pf14):
        ms = _mset(net14, pf14)
        ref = WlsEstimator(net14, ms).estimate()
        got = BatchEstimator(net14, ms).estimate()
        assert got.converged and got.iterations == ref.iterations
        assert np.array_equal(got.Vm, ref.Vm)
        assert np.array_equal(got.Va, ref.Va)
        assert got.objective == ref.objective

    @pytest.mark.parametrize("case", ["net14", "net118"])
    def test_mixed_topology_batch_matches_serial(self, case, request):
        net = request.getfixturevalue(case)
        pf = request.getfixturevalue("pf14" if case == "net14" else "pf118")
        ms = _mset(net, pf)
        scenarios = [
            None,
            NetworkDelta.branch_outage(SAFE_PAIR[0]),
            NetworkDelta.branch_outage(SAFE_PAIR[1]),
            NetworkDelta.branch_outage(*SAFE_PAIR),
        ]
        batch = BatchEstimator(net, ms).estimate_batch(scenarios)
        for sc, got in zip(scenarios, batch):
            base = net if sc is None else net.fork(sc)
            ref = WlsEstimator(base, ms).estimate()
            assert got.converged == ref.converged
            assert got.iterations == ref.iterations
            assert np.allclose(got.Vm, ref.Vm, atol=1e-10)
            assert np.allclose(got.Va, ref.Va, atol=1e-10)
            assert np.allclose(got.step_norms, ref.step_norms, atol=1e-10)

    def test_k32_value_frames(self, net14, pf14):
        ms = _mset(net14, pf14)
        rng = np.random.default_rng(11)
        zs = [
            ms.z + 0.01 * ms.sigma * rng.standard_normal(len(ms))
            for _ in range(32)
        ]
        batch = BatchEstimator(net14, ms).estimate_batch(
            [BatchScenario(z=z) for z in zs]
        )
        assert len(batch) == 32
        for z, got in zip(zs, batch):
            ref = WlsEstimator(net14, ms).estimate(z=z)
            assert np.allclose(got.Vm, ref.Vm, atol=1e-10)
            assert np.allclose(got.Va, ref.Va, atol=1e-10)

    def test_nonconverged_reported_identically(self, net14, pf14):
        ms = _mset(net14, pf14)
        scenarios = [None, NetworkDelta.branch_outage(SAFE_PAIR[0])]
        batch = BatchEstimator(net14, ms).estimate_batch(scenarios, max_iter=2)
        for sc, got in zip(scenarios, batch):
            base = net14 if sc is None else net14.fork(sc)
            ref = WlsEstimator(base, ms).estimate(max_iter=2)
            assert not got.converged and not ref.converged
            assert got.iterations == ref.iterations == 2
            assert np.allclose(got.Vm, ref.Vm, atol=1e-10)

    def test_mixed_convergence_mask(self, net14, pf14):
        """Warm-started scenarios finish early, cold ones keep iterating."""
        ms = _mset(net14, pf14)
        est = BatchEstimator(net14, ms)
        ref = est.estimate()
        batch = est.estimate_batch(
            [BatchScenario(x0=(ref.Vm, ref.Va)), None, None]
        )
        assert batch.converged.all()
        assert batch[0].iterations < batch[1].iterations
        assert np.allclose(batch[1].Vm, ref.Vm, atol=1e-10)

    def test_chunking_respects_max_batch(self, net14, pf14):
        ms = _mset(net14, pf14)
        est = BatchEstimator(net14, ms, max_batch=3)
        batch = est.estimate_batch([None] * 7)
        ref = est.estimate()
        for got in batch:
            assert np.allclose(got.Vm, ref.Vm, atol=1e-10)

    def test_islanding_delta_raises_like_serial(self, net14, pf14):
        ms = _mset(net14, pf14)
        _, islanding = enumerate_n1(net14)
        bad = outage_delta(islanding[0])
        with pytest.raises(EstimationError):
            WlsEstimator(net14.fork(bad), ms).estimate()
        with pytest.raises(EstimationError):
            BatchEstimator(net14, ms).estimate_batch([bad, None])

    def test_non_lu_solver_falls_back_serial(self, net14, pf14):
        ms = _mset(net14, pf14)
        batch = BatchEstimator(net14, ms, solver="lsqr").estimate_batch(
            [None, NetworkDelta.branch_outage(SAFE_PAIR[0])]
        )
        ref = WlsEstimator(net14, ms, solver="lsqr").estimate()
        assert np.array_equal(batch[0].Vm, ref.Vm)

    def test_bad_inputs(self, net14, pf14):
        ms = _mset(net14, pf14)
        est = BatchEstimator(net14, ms)
        with pytest.raises(ValueError):
            est.estimate_batch([BatchScenario(z=np.zeros(3))] * 2)
        with pytest.raises(TypeError):
            est.estimate_batch(["outage"])
        with pytest.raises(ValueError):
            BatchEstimator(net14, ms, max_batch=0)


# ---------------------------------------------------------------------------
# Batched contingency screening
# ---------------------------------------------------------------------------
def _violations_match(got, exp, ratings):
    """Violation lists must match except knife-edge flips (|flow|==rating)."""
    gset = {v.branch for v in got.violations}
    eset = {v.branch for v in exp.violations}
    for b in gset ^ eset:
        v = next(v for v in (got.violations + exp.violations) if v.branch == b)
        assert abs(abs(v.flow) - v.rating) < 1e-9, f"non-knife-edge flip {v}"


class TestContingencyBatch:
    @pytest.mark.parametrize("case", ["net14", "net118"])
    def test_analyze_batch_matches_serial(self, case, request):
        net = request.getfixturevalue(case)
        analyzer = ContingencyAnalyzer(net, method="dc", rating_margin=1.1)
        cons, _ = enumerate_n1(net)
        got = analyzer.analyze_batch(cons)
        for c, g in zip(cons, got):
            e = analyzer.analyze(c)
            assert g.converged == e.converged
            assert abs(g.max_loading - e.max_loading) < 1e-9
            _violations_match(g, e, analyzer.ratings)

    def test_run_parallel_batch_scheme(self, net14):
        analyzer = ContingencyAnalyzer(net14, method="dc")
        cons, _ = enumerate_n1(net14)
        report = run_parallel(analyzer, cons, batch=True)
        assert report.scheme == "batch"
        assert report.per_worker_cases == [len(cons)]
        assert len(report.results) == len(cons)
        ref = analyzer.analyze_all(cons)
        for g, e in zip(report.results, ref):
            assert g.contingency == e.contingency
            assert abs(g.max_loading - e.max_loading) < 1e-9

    def test_analyze_all_batch_flag(self, net14):
        analyzer = ContingencyAnalyzer(net14, method="dc")
        cons, _ = enumerate_n1(net14)
        got = analyzer.analyze_all(cons, batch=True)
        assert len(got) == len(cons)

    def test_ac_method_falls_back(self, net14):
        analyzer = ContingencyAnalyzer(net14, method="ac")
        cons, _ = enumerate_n1(net14)
        got = analyzer.analyze_batch(cons[:3])
        for c, g in zip(cons, got):
            e = analyzer.analyze(c)
            assert g.max_loading == e.max_loading


# ---------------------------------------------------------------------------
# ScenarioService batch_solve drain path
# ---------------------------------------------------------------------------
class TestServingBatchSolve:
    @pytest.fixture()
    def svc_parts(self, net14, pf14):
        from repro.dse import decompose, dse_pmu_placement

        dec = decompose(net14, 2, seed=0)
        rng = np.random.default_rng(3)
        plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        return dec, ms

    def test_one_flush_one_batched_solve(self, svc_parts, net14):
        from repro.serving import ScenarioService

        dec, ms = svc_parts
        cons, _ = enumerate_n1(net14)
        delta = NetworkDelta.branch_outage(SAFE_PAIR[0])
        with ScenarioService(
            dec, ms, batch_solve=True, max_batch=16, flush_latency=0.05
        ) as svc:
            fc = svc.submit_contingencies(cons[:4])
            fe = [svc.submit_estimation() for _ in range(2)]
            fd = svc.submit_estimation(delta=delta)
            con_res = [f.result(timeout=60) for f in fc]
            est_res = [f.result(timeout=60) for f in fe]
            d_res = fd.result(timeout=60)

        ref = WlsEstimator(net14, ms).estimate()
        ref_d = WlsEstimator(net14.fork(delta), ms).estimate()
        for r in est_res:
            assert np.allclose(r.value.Vm, ref.Vm, atol=1e-10)
        assert np.allclose(d_res.value.Vm, ref_d.Vm, atol=1e-10)
        assert all(r.value.converged for r in con_res)
        # the whole flush coalesced: every result saw a multi-request batch
        assert d_res.batch_size >= 3

    def test_delta_requires_batch_solve(self, svc_parts):
        from repro.serving import ScenarioService

        dec, ms = svc_parts
        with ScenarioService(dec, ms) as svc:
            with pytest.raises(ValueError, match="batch_solve"):
                svc.submit_estimation(delta=NetworkDelta.branch_outage(0))


# ---------------------------------------------------------------------------
# Vectorised area interchange (satellite)
# ---------------------------------------------------------------------------
def test_area_interchange_matches_loop(net14, pf14):
    ms = _mset(net14, pf14)
    est = WlsEstimator(net14, ms).estimate()
    labels = np.arange(net14.n_bus) % 3
    got = area_interchange(net14, est, labels)

    from repro.estimation.outputs import derive_outputs

    out = derive_outputs(net14, est)
    ref = {int(a): 0.0 for a in np.unique(labels)}
    for k in net14.live_branches():
        af, at = int(labels[net14.f[k]]), int(labels[net14.t[k]])
        if af != at:
            ref[af] += out.Pf[k]
            ref[at] += out.Pt[k]
    assert got.keys() == ref.keys()
    for a in ref:
        assert got[a] == pytest.approx(ref[a], abs=1e-12)
