"""Tests for the MeDICi-style middleware."""

import threading
import time

import numpy as np
import pytest

from repro.middleware import (
    EndpointRegistry,
    FrameError,
    InprocTransport,
    MifComponent,
    MifPipeline,
    MiddlewareFabric,
    MWClient,
    TcpTransport,
    pack_state_update,
    parse_endpoint,
    unpack_state_update,
)


class TestEndpoints:
    def test_parse_tcp(self):
        ep = parse_endpoint("tcp://nwiceb.pnl.gov:6789")
        assert (ep.scheme, ep.host, ep.port) == ("tcp", "nwiceb.pnl.gov", 6789)
        assert ep.url == "tcp://nwiceb.pnl.gov:6789"

    def test_parse_inproc(self):
        ep = parse_endpoint("inproc://site-3")
        assert ep.host == "site-3"
        assert ep.port is None

    def test_port_zero_allowed(self):
        assert parse_endpoint("tcp://127.0.0.1:0").port == 0

    @pytest.mark.parametrize(
        "bad",
        ["nohost", "tcp://host", "tcp://:80", "tcp://h:99999", "tcp://h:xy",
         "ftp://h:1", "inproc://"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestStateUpdatePacking:
    def test_roundtrip(self):
        ids = np.array([5, 9, 100], dtype=np.int64)
        vm = np.array([1.0, 0.98, 1.02])
        va = np.array([-0.1, 0.0, 0.2])
        ids2, vm2, va2 = unpack_state_update(pack_state_update(ids, vm, va))
        assert np.array_equal(ids, ids2)
        assert np.array_equal(vm, vm2)
        assert np.array_equal(va, va2)

    def test_empty_update(self):
        ids, vm, va = unpack_state_update(
            pack_state_update(np.array([], np.int64), np.array([]), np.array([]))
        )
        assert len(ids) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pack_state_update(np.array([1]), np.array([1.0, 2.0]), np.array([0.0]))

    def test_corrupt_buffer_rejected(self):
        buf = pack_state_update(np.array([1]), np.array([1.0]), np.array([0.0]))
        with pytest.raises(FrameError):
            unpack_state_update(buf[:-3])


class TestInprocTransport:
    def test_connect_without_listener(self):
        t = InprocTransport()
        with pytest.raises(ConnectionRefusedError):
            t.connect("inproc://nobody")

    def test_duplicate_bind_rejected(self):
        t = InprocTransport()
        t.listen("inproc://x")
        with pytest.raises(ValueError, match="already bound"):
            t.listen("inproc://x")

    def test_send_recv(self):
        t = InprocTransport()
        listener = t.listen("inproc://srv")
        client = t.connect("inproc://srv")
        server = listener.accept(timeout=1)
        client.send_bytes(b"ping")
        assert server.recv_bytes(timeout=1) == b"ping"
        server.send_bytes(b"pong")
        assert client.recv_bytes(timeout=1) == b"pong"

    def test_recv_timeout(self):
        t = InprocTransport()
        listener = t.listen("inproc://srv2")
        client = t.connect("inproc://srv2")
        server = listener.accept(timeout=1)
        with pytest.raises(TimeoutError):
            server.recv_bytes(timeout=0.05)

    def test_scheme_mismatch(self):
        t = InprocTransport()
        with pytest.raises(ValueError):
            t.listen("tcp://127.0.0.1:0")


class TestTcpTransport:
    def test_roundtrip_frames(self):
        t = TcpTransport()
        listener = t.listen("tcp://127.0.0.1:0")
        got = []

        def server():
            conn = listener.accept(timeout=2)
            got.append(conn.recv_bytes(timeout=2))
            conn.send_bytes(b"ack")
            conn.close()

        th = threading.Thread(target=server, daemon=True)
        th.start()
        client = t.connect(listener.endpoint.url)
        client.send_bytes(b"hello" * 1000)
        assert client.recv_bytes(timeout=2) == b"ack"
        th.join(timeout=2)
        assert got[0] == b"hello" * 1000
        client.close()
        listener.close()

    def test_port_zero_resolved(self):
        t = TcpTransport()
        listener = t.listen("tcp://127.0.0.1:0")
        assert listener.endpoint.port > 0
        listener.close()

    def test_large_frame(self):
        t = TcpTransport()
        listener = t.listen("tcp://127.0.0.1:0")
        payload = bytes(np.random.default_rng(0).integers(0, 256, 2_000_000, dtype=np.uint8))
        got = []

        def server():
            conn = listener.accept(timeout=2)
            got.append(conn.recv_bytes(timeout=5))
            conn.close()

        th = threading.Thread(target=server, daemon=True)
        th.start()
        client = t.connect(listener.endpoint.url)
        client.send_bytes(payload)
        th.join(timeout=5)
        assert got[0] == payload
        client.close()
        listener.close()


class TestPipeline:
    def test_relay_inproc(self):
        t = InprocTransport()
        sink = t.listen("inproc://sink")
        pipeline = MifPipeline(inproc=t)
        comp = MifComponent("relay")
        pipeline.add_mif_component(comp)
        comp.set_in_endpoint("inproc://pipe-in")
        comp.set_out_endpoint("inproc://sink")
        pipeline.start()
        try:
            conn = t.connect("inproc://pipe-in")
            conn.send_bytes(b"data123")
            server = sink.accept(timeout=2)
            assert server.recv_bytes(timeout=2) == b"data123"
            time.sleep(0.05)
            assert comp.frames_relayed == 1
            assert comp.bytes_relayed == 7
        finally:
            pipeline.stop()

    def test_transform_applied(self):
        t = InprocTransport()
        sink = t.listen("inproc://sink-t")
        pipeline = MifPipeline(inproc=t)
        comp = MifComponent("upper", transform=lambda p: p.upper())
        pipeline.add_mif_component(comp)
        comp.set_in_endpoint("inproc://pipe-t")
        comp.set_out_endpoint("inproc://sink-t")
        pipeline.start()
        try:
            conn = t.connect("inproc://pipe-t")
            conn.send_bytes(b"abc")
            server = sink.accept(timeout=2)
            assert server.recv_bytes(timeout=2) == b"ABC"
        finally:
            pipeline.stop()

    def test_missing_endpoints_rejected(self):
        pipeline = MifPipeline(inproc=InprocTransport())
        pipeline.add_mif_component(MifComponent("incomplete"))
        with pytest.raises(ValueError, match="missing endpoints"):
            pipeline.start()

    def test_double_start_rejected(self):
        t = InprocTransport()
        t.listen("inproc://s2")
        pipeline = MifPipeline(inproc=t)
        comp = MifComponent("x")
        pipeline.add_mif_component(comp)
        comp.set_in_endpoint("inproc://p2")
        comp.set_out_endpoint("inproc://s2")
        pipeline.start()
        try:
            with pytest.raises(RuntimeError):
                pipeline.start()
        finally:
            pipeline.stop()


class TestMWClient:
    def test_named_send(self):
        t = InprocTransport()
        registry = EndpointRegistry()
        alice = MWClient("alice", registry, inproc=t)
        bob = MWClient("bob", registry, inproc=t)
        alice.serve("inproc://alice")
        bob.serve("inproc://bob")
        try:
            alice.send("bob", b"hi bob")
            assert bob.recv(timeout=2) == b"hi bob"
            assert alice.bytes_sent == 6
            assert bob.bytes_received == 6
        finally:
            alice.close()
            bob.close()

    def test_unknown_destination(self):
        registry = EndpointRegistry()
        client = MWClient("solo", registry, inproc=InprocTransport())
        with pytest.raises(KeyError, match="unknown estimator"):
            client.send("ghost", b"x")

    def test_recv_timeout(self):
        t = InprocTransport()
        client = MWClient("x", EndpointRegistry(), inproc=t)
        client.serve("inproc://x")
        try:
            with pytest.raises(TimeoutError):
                client.recv(timeout=0.05)
        finally:
            client.close()


class TestFabric:
    def test_inproc_fabric_roundtrip(self):
        with MiddlewareFabric(["se0", "se1"], pairs=[("se0", "se1")]) as fab:
            fab.send("se0", "se1", b"solution")
            assert fab.recv("se1", timeout=2) == b"solution"

    def test_tcp_fabric_roundtrip(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")], use_tcp=True) as fab:
            fab.send("a", "b", b"x" * 50_000)
            assert len(fab.recv("b", timeout=5)) == 50_000

    def test_no_pipeline_for_pair(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")]) as fab:
            with pytest.raises(KeyError, match="no pipeline"):
                fab.send("b", "a", b"x")

    def test_relay_stats(self):
        with MiddlewareFabric(["a", "b"], pairs=[("a", "b")]) as fab:
            fab.send("a", "b", b"12345")
            fab.recv("b", timeout=2)
            time.sleep(0.05)
            frames, nbytes = fab.relay_stats()[("a", "b")]
            assert frames == 1
            assert nbytes == 5

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MiddlewareFabric(["a", "a"])

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError):
            MiddlewareFabric(["a"], pairs=[("a", "zz")])

    def test_state_update_through_fabric(self):
        with MiddlewareFabric(["s0", "s1"], pairs=[("s0", "s1")]) as fab:
            payload = pack_state_update(
                np.array([7, 8]), np.array([1.01, 0.99]), np.array([0.05, -0.02])
            )
            fab.send("s0", "s1", payload)
            ids, vm, va = unpack_state_update(fab.recv("s1", timeout=2))
            assert ids.tolist() == [7, 8]
            assert vm[0] == pytest.approx(1.01)
