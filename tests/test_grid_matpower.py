"""Tests for MATPOWER case-file I/O."""

import numpy as np
import pytest

from repro.grid import (
    dump_matpower,
    load_matpower,
    parse_matpower,
    run_ac_power_flow,
    save_matpower,
)
from repro.grid.cases import case4, case14, case118
from repro.grid.network import Network


class TestParse:
    def test_minimal_case(self):
        text = """
        function mpc = tiny
        mpc.baseMVA = 100;
        mpc.bus = [
            1 3 0 0 0 0 1 1.0 0 138 1 1.1 0.9;
            2 1 10 5 0 0 1 1.0 0 138 1 1.1 0.9;
        ];
        mpc.gen = [
            1 20 0 50 -50 1.0 100 1 100 0;
        ];
        mpc.branch = [
            1 2 0.01 0.05 0.02 0 0 0 0 0 1 -360 360;
        ];
        """
        case = parse_matpower(text)
        assert case["name"] == "tiny"
        assert case["baseMVA"] == 100.0
        net = Network.from_case(case)
        assert net.n_bus == 2

    def test_comments_stripped(self):
        text = """
        function mpc = c  % trailing comment
        mpc.baseMVA = 100; % base
        % full-line comment
        mpc.bus = [
            1 3 0 0 0 0 1 1.0 0 138 1 1.1 0.9; % bus 1
            2 1 0 0 0 0 1 1.0 0 138 1 1.1 0.9;
        ];
        mpc.gen = [ 1 0 0 9 -9 1.0 100 1 9 0; ];
        mpc.branch = [ 1 2 0.01 0.05 0 0 0 0 0 0 1 -360 360; ];
        """
        case = parse_matpower(text)
        assert len(case["bus"]) == 2

    def test_missing_base_mva(self):
        with pytest.raises(ValueError, match="baseMVA"):
            parse_matpower("mpc.bus = [1 3 0 0 0 0 1 1 0 138 1 1.1 .9;];")

    def test_missing_section(self):
        text = "mpc.baseMVA = 100;\nmpc.bus = [1 3 0 0 0 0 1 1 0 138 1 1.1 .9;];"
        with pytest.raises(ValueError, match="missing mpc.gen"):
            parse_matpower(text)

    def test_ragged_matrix(self):
        text = """
        mpc.baseMVA = 100;
        mpc.bus = [
            1 3 0 0 0 0 1 1.0 0 138 1 1.1 0.9;
            2 1 0 0;
        ];
        mpc.gen = [1 0 0 9 -9 1 100 1 9 0;];
        mpc.branch = [1 2 0.01 0.05 0 0 0 0 0 0 1 -360 360;];
        """
        with pytest.raises(ValueError, match="ragged"):
            parse_matpower(text)


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [case4, case14, case118])
    def test_electrical_roundtrip(self, factory):
        net = factory()
        net2 = Network.from_case(parse_matpower(dump_matpower(net)))
        assert net2.n_bus == net.n_bus
        assert net2.n_branch == net.n_branch
        assert net2.n_gen == net.n_gen
        assert np.allclose(net2.r, net.r)
        assert np.allclose(net2.x, net.x)
        assert np.allclose(net2.tap, net.tap)
        assert np.allclose(net2.Pd, net.Pd)
        assert np.allclose(net2.Pg, net.Pg)
        assert np.array_equal(net2.bus_type, net.bus_type)

    def test_power_flow_identical(self, net118):
        net2 = Network.from_case(parse_matpower(dump_matpower(net118)))
        pf1 = run_ac_power_flow(net118)
        pf2 = run_ac_power_flow(net2)
        assert np.allclose(pf1.Vm, pf2.Vm, atol=1e-12)
        assert np.allclose(pf1.Va, pf2.Va, atol=1e-12)

    def test_file_io(self, tmp_path, net14):
        path = tmp_path / "case14.m"
        save_matpower(net14, path)
        net2 = load_matpower(path)
        assert net2.n_bus == 14
        assert np.allclose(net2.x, net14.x)

    def test_out_of_service_branch_preserved(self, tmp_path):
        net = case14()
        net.br_status[3] = 0
        net2 = Network.from_case(parse_matpower(dump_matpower(net)))
        assert net2.br_status[3] == 0
