"""Property tests for the simulated MPI layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterSpec,
    ClusterTopology,
    LinkSpec,
    SimComm,
    SimEngine,
    pnnl_testbed,
)


def _two_rank_comm(latency=1e-4, bandwidth=1e8):
    eng = SimEngine()
    topo = ClusterTopology(
        clusters=[ClusterSpec(name="a"), ClusterSpec(name="b")],
        default_link=LinkSpec(latency=latency, bandwidth=bandwidth),
    )
    return eng, SimComm(eng, topo, ["a", "b"])


class TestFifoOrdering:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=20),
    )
    def test_same_pair_messages_arrive_in_send_order(self, sizes):
        """Property: equal-size-independent FIFO — messages between one
        (src, dst, tag) arrive in the order they were sent, because the
        receiver matches them in posting order."""
        eng, comm = _two_rank_comm()
        received = []

        def sender():
            for i, nb in enumerate(sizes):
                yield from comm.send(1, i, nbytes=float(nb), src=0)

        def receiver():
            for _ in sizes:
                msg = yield from comm.recv(0, dst=1)
                received.append(msg)

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        assert received == list(range(len(sizes)))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 15),
        seed=st.integers(0, 1000),
    )
    def test_tag_isolation(self, n, seed):
        """Property: messages on different tags never cross-match."""
        rng = np.random.default_rng(seed)
        eng, comm = _two_rank_comm()
        tags = rng.integers(0, 3, n).tolist()
        got: dict[int, list] = {0: [], 1: [], 2: []}

        def sender():
            for i, tag in enumerate(tags):
                yield from comm.send(1, (tag, i), nbytes=8.0, src=0, tag=tag)

        def receiver():
            for tag in tags:
                payload = yield from comm.recv(0, dst=1, tag=tag)
                got[payload[0]].append(payload[1])

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        for tag in (0, 1, 2):
            expect = [i for i, t in enumerate(tags) if t == tag]
            assert got[tag] == expect


class TestTimingProperties:
    @settings(max_examples=25, deadline=None)
    @given(nbytes=st.floats(1, 1e9))
    def test_transfer_time_monotone_in_size(self, nbytes):
        eng, comm = _two_rank_comm()
        t1 = comm.transfer_time(0, 1, nbytes)
        t2 = comm.transfer_time(0, 1, 2 * nbytes)
        assert t2 > t1

    def test_extra_delay_defers_arrival(self):
        eng, comm = _two_rank_comm()
        arrivals = []

        def sender():
            yield from comm.send(1, "a", nbytes=100, src=0)
            yield from comm.send(1, "b", nbytes=100, src=0, extra_delay=0.5)

        def receiver():
            for _ in range(2):
                yield from comm.recv(0, dst=1)
                arrivals.append(eng.now)

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        assert arrivals[1] - arrivals[0] >= 0.5

    def test_negative_extra_delay_rejected(self):
        eng, comm = _two_rank_comm()

        def bad():
            yield from comm.send(1, None, nbytes=1, src=0, extra_delay=-1.0)

        eng.process(bad())
        with pytest.raises(ValueError):
            eng.run()


class TestDegradedLinks:
    def test_degraded_link_slows_dse_timeline(self, net118, pf118):
        """A congested inter-cluster link stretches the message-level DSE
        timeline (the runtime-behaviour question the paper raises)."""
        from repro.core import ClusterMapper, simulate_dse_message_level
        from repro.dse import (
            DistributedStateEstimator,
            decompose,
            dse_pmu_placement,
        )
        from repro.measurements import full_placement, generate_measurements

        dec = decompose(net118, 9, seed=0)
        rng = np.random.default_rng(0)
        plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net118, plac, pf118, rng=rng)
        result = DistributedStateEstimator(dec, ms).run()

        healthy = pnnl_testbed()
        degraded = pnnl_testbed()
        slow = LinkSpec(latency=0.2, bandwidth=1e5)  # a sick WAN link
        degraded.add_link("nwiceb", "chinook", slow)
        degraded.add_link("nwiceb", "catamount", slow)
        degraded.add_link("catamount", "chinook", slow)

        mapping = ClusterMapper(healthy, seed=0).map_step1(dec, 1.0)
        t_ok = simulate_dse_message_level(dec, result, mapping, healthy)
        t_bad = simulate_dse_message_level(dec, result, mapping, degraded)
        assert t_bad.total_time > t_ok.total_time + 0.5
