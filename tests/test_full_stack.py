"""Golden-path integration: the whole system in one scenario.

A miniature of the paper's end-to-end story: grid → telemetry →
architecture session (mapping + DSE + simulated testbed + middleware) →
operational outputs → contingency screening → report rendering.  If any
layer's contract drifts, this test is the first to notice.
"""

import numpy as np
import pytest

from repro.contingency import ContingencyAnalyzer, enumerate_n1, run_parallel_threads
from repro.core import ArchitecturePrototype, DseSession, LiveDseRuntime
from repro.dse import dse_pmu_placement
from repro.estimation import area_interchange, derive_outputs, estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import ScadaSystem, full_placement
from repro.reporting import frame_table, session_summary


def test_full_stack_golden_path(tmp_path):
    # --- the paper's system, the paper's decomposition sizes -------------
    net = case118()
    with ArchitecturePrototype.assemble(
        net, subsystem_sizes=(14, 13, 13, 13, 13, 12, 14, 13, 13), seed=0
    ) as arch:
        assert tuple(arch.dec.sizes().tolist()) == (14, 13, 13, 13, 13, 12, 14, 13, 13)

        placement = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
        scada = ScadaSystem(net, placement, seed=0)
        session = DseSession(arch, bad_data_policy="identify")

        # --- three SCADA frames through the architecture -----------------
        frames = scada.frames(3)
        for frame in frames:
            rep = session.process_frame(
                frame.mset, t=frame.t, truth=(frame.pf.Vm, frame.pf.Va)
            )
            assert rep.vm_rmse_vs_truth < 3e-3
            assert rep.timings.total > 0
            # the mapping uses all three testbed clusters
            used = [c for c, subs in rep.mapping_step1.items() if subs]
            assert len(used) == 3

        summary = session_summary(session.reports)
        assert summary["frames"] == 3
        table = frame_table(session.reports)
        assert table.count("\n") == 4

        # --- the live runtime agrees with the in-process DSE -------------
        live = LiveDseRuntime(arch.dec, frames[-1].mset).run()
        assert live.errors == []
        err = live.state_error(frames[-1].pf.Vm, frames[-1].pf.Va)
        assert err["vm_rmse"] < 3e-3

        # --- operational outputs from the centralized estimate -----------
        est = estimate_state(net, frames[-1].mset)
        out = derive_outputs(net, est)
        pf = frames[-1].pf
        assert out.total_loss_p == pytest.approx(
            (pf.Pf + pf.Pt).sum(), rel=0.05
        )
        interchange = area_interchange(net, est)
        assert set(interchange) == {1, 2, 3}

        # --- contingency screening from that estimate --------------------
        analyzer = ContingencyAnalyzer.from_estimate(
            net, est, method="dc", rating_margin=1.5
        )
        safe, islanding = enumerate_n1(net)
        assert len(safe) + len(islanding) == net.n_branch
        report = run_parallel_threads(
            analyzer, safe[:40], n_workers=4, scheme="dynamic"
        )
        assert len(report.results) == 40
        assert sum(report.per_worker_cases) == 40
