"""Tests for network decomposition and subnetwork extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import Decomposition, decompose, decompose_by_areas, extract_subnetwork
from repro.grid import is_single_island, run_ac_power_flow
from repro.grid.cases import case14, case118, synthetic_grid


class TestDecompose:
    def test_nine_subsystems_case118(self, net118):
        dec = decompose(net118, 9, seed=0)
        assert dec.m == 9
        assert dec.sizes().sum() == 118

    def test_all_subsystems_nonempty(self, net118):
        dec = decompose(net118, 9, seed=0)
        assert np.all(dec.sizes() > 0)

    def test_internally_connected(self, net118):
        dec = decompose(net118, 9, seed=0)
        assert dec.is_internally_connected()

    def test_roughly_balanced(self, net118):
        """Paper's subsystems are 12-14 buses; ours should be comparable."""
        dec = decompose(net118, 9, seed=0)
        sizes = dec.sizes()
        assert sizes.max() <= 2 * sizes.min()
        assert sizes.max() <= 18

    def test_deterministic(self, net118):
        a = decompose(net118, 9, seed=5)
        b = decompose(net118, 9, seed=5)
        assert np.array_equal(a.part, b.part)

    def test_m1_trivial(self, net14):
        dec = decompose(net14, 1)
        assert len(dec.tie_lines) == 0
        assert dec.sizes().tolist() == [14]

    def test_invalid_m(self, net14):
        with pytest.raises(ValueError):
            decompose(net14, 0)

    @settings(max_examples=10, deadline=None)
    @given(m=st.integers(2, 6), seed=st.integers(0, 500))
    def test_property_decomposition_validity(self, m, seed):
        """Property: any decomposition is complete, connected, non-empty."""
        net = synthetic_grid(n_areas=4, buses_per_area=12, seed=seed % 7)
        dec = decompose(net, m, seed=seed)
        assert dec.sizes().sum() == net.n_bus
        assert np.all(dec.sizes() > 0)
        assert dec.is_internally_connected()


class TestDecomposeByAreas:
    def test_follows_area_labels(self):
        net = synthetic_grid(n_areas=5, buses_per_area=10, seed=1)
        dec = decompose_by_areas(net)
        assert dec.m == 5
        assert dec.sizes().tolist() == [10] * 5


class TestDecompositionQueries:
    @pytest.fixture(scope="class")
    def dec(self, net118):
        return decompose(net118, 9, seed=0)

    def test_tie_lines_cross_subsystems(self, dec, net118):
        for k in dec.tie_lines:
            assert dec.part[net118.f[k]] != dec.part[net118.t[k]]

    def test_internal_branches_stay_inside(self, dec, net118):
        for s in range(9):
            for k in dec.internal_branches(s):
                assert dec.part[net118.f[k]] == s
                assert dec.part[net118.t[k]] == s

    def test_internal_plus_ties_cover_live_branches(self, dec, net118):
        covered = set(dec.tie_lines.tolist())
        for s in range(9):
            covered |= set(dec.internal_branches(s).tolist())
        assert covered == set(net118.live_branches().tolist())

    def test_boundary_buses_touch_ties(self, dec, net118):
        for s in range(9):
            bb = set(dec.boundary_buses(s).tolist())
            tie_ends = set()
            for k in dec.incident_tie_lines(s):
                for b in (net118.f[k], net118.t[k]):
                    if dec.part[b] == s:
                        tie_ends.add(int(b))
            assert bb == tie_ends

    def test_external_boundary_in_other_subsystems(self, dec):
        for s in range(9):
            ext = dec.external_boundary_buses(s)
            assert np.all(dec.part[ext] != s)

    def test_neighbors_symmetric(self, dec):
        for s in range(9):
            for t in dec.neighbors(s):
                assert s in dec.neighbors(int(t))

    def test_quotient_graph_weights_match_table1_scheme(self, dec):
        """Initial weights: vertex = bus count, edge = size sum (Table I)."""
        g = dec.quotient_graph()
        assert np.array_equal(g.vwgt, dec.sizes())
        pairs, w = g.edge_list()
        sizes = dec.sizes()
        for (u, v), x in zip(pairs, w):
            assert x == sizes[u] + sizes[v]

    def test_diameter_positive(self, dec):
        assert 1 <= dec.diameter() <= 8

    def test_part_validation(self, net14):
        with pytest.raises(ValueError):
            Decomposition(net=net14, part=np.zeros(5, int), m=2)
        with pytest.raises(ValueError):
            Decomposition(net=net14, part=np.full(14, 7), m=2)


class TestExtractSubnetwork:
    def test_roundtrip_ids(self, net118):
        dec = decompose(net118, 9, seed=0)
        own = dec.buses(0)
        sub, bus_map, _ = extract_subnetwork(net118, own, dec.internal_branches(0))
        assert sub.n_bus == len(own)
        for g in own:
            assert sub.bus_ids[bus_map[g]] == net118.bus_ids[g]

    def test_subnetwork_is_connected(self, net118):
        dec = decompose(net118, 9, seed=0)
        for s in range(9):
            sub, _, _ = extract_subnetwork(
                net118, dec.buses(s), dec.internal_branches(s)
            )
            assert is_single_island(sub)

    def test_has_exactly_one_slack(self, net118):
        dec = decompose(net118, 9, seed=0)
        sub, _, _ = extract_subnetwork(net118, dec.buses(3), dec.internal_branches(3))
        assert len(sub.slack_buses) == 1

    def test_reference_bus_honoured(self, net118):
        dec = decompose(net118, 9, seed=0)
        own = dec.buses(2)
        ref = int(own[3])
        sub, bus_map, _ = extract_subnetwork(
            net118, own, dec.internal_branches(2), reference_bus=ref
        )
        assert sub.slack_buses.tolist() == [bus_map[ref]]

    def test_rejects_external_branch(self, net118):
        dec = decompose(net118, 9, seed=0)
        ties = dec.incident_tie_lines(0)
        with pytest.raises(ValueError, match="outside"):
            extract_subnetwork(net118, dec.buses(0), ties[:1])

    def test_rejects_external_reference(self, net118):
        dec = decompose(net118, 9, seed=0)
        other = dec.buses(1)[0]
        with pytest.raises(ValueError, match="reference"):
            extract_subnetwork(
                net118, dec.buses(0), dec.internal_branches(0),
                reference_bus=int(other),
            )

    def test_branch_parameters_copied(self, net118):
        dec = decompose(net118, 9, seed=0)
        branches = dec.internal_branches(0)
        sub, _, branch_map = extract_subnetwork(net118, dec.buses(0), branches)
        for g in branches:
            l = branch_map[g]
            assert sub.x[l] == net118.x[g]
            assert sub.tap[l] == net118.tap[g]


class TestDecomposeWithSizes:
    PAPER_SIZES = (14, 13, 13, 13, 13, 12, 14, 13, 13)

    def test_exact_paper_sizes(self, net118):
        from repro.dse import decompose_with_sizes

        dec = decompose_with_sizes(net118, self.PAPER_SIZES, seed=0)
        assert tuple(dec.sizes().tolist()) == self.PAPER_SIZES
        assert dec.is_internally_connected()

    def test_uneven_targets(self, net14):
        from repro.dse import decompose_with_sizes

        dec = decompose_with_sizes(net14, [8, 6], seed=0)
        assert sorted(dec.sizes().tolist()) == [6, 8]
        assert dec.is_internally_connected()

    def test_sum_validated(self, net14):
        from repro.dse import decompose_with_sizes

        with pytest.raises(ValueError, match="sum"):
            decompose_with_sizes(net14, [5, 5])

    def test_positive_sizes_required(self, net14):
        from repro.dse import decompose_with_sizes

        with pytest.raises(ValueError, match="positive"):
            decompose_with_sizes(net14, [14, 0])

    def test_deterministic(self, net118):
        from repro.dse import decompose_with_sizes

        a = decompose_with_sizes(net118, self.PAPER_SIZES, seed=3)
        b = decompose_with_sizes(net118, self.PAPER_SIZES, seed=3)
        assert np.array_equal(a.part, b.part)
