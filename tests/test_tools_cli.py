"""Tests for the CLI tools."""

import pytest

from repro.tools import load_case
from repro.tools.decompose import main as decompose_main
from repro.tools.estimate import main as estimate_main
from repro.tools.run_session import main as session_main


class TestLoadCase:
    def test_builtin_cases(self):
        assert load_case("case4").n_bus == 4
        assert load_case("case14").n_bus == 14
        assert load_case("case118").n_bus == 118

    def test_synthetic_spec(self):
        net = load_case("synthetic:3x10")
        assert net.n_bus == 30

    def test_synthetic_with_seed(self):
        a = load_case("synthetic:3x10:5")
        b = load_case("synthetic:3x10:5")
        assert (a.f == b.f).all()

    @pytest.mark.parametrize("bad", ["case999", "synthetic:abc", "synthetic:3", ""])
    def test_bad_specs(self, bad):
        with pytest.raises(ValueError):
            load_case(bad)


class TestEstimateCli:
    def test_default_run(self, capsys):
        assert estimate_main(["--case", "case14"]) == 0
        out = capsys.readouterr().out
        assert "WLS" in out
        assert "Vm RMSE" in out

    def test_pcg_solver(self, capsys):
        assert estimate_main(["--case", "case14", "--solver", "pcg"]) == 0

    def test_robust_flag(self, capsys):
        assert estimate_main(["--case", "case14", "--robust"]) == 0
        assert "Huber" in capsys.readouterr().out

    def test_constrained_flag(self, capsys):
        assert estimate_main(["--case", "case14", "--constrained"]) == 0
        assert "constrained" in capsys.readouterr().out

    def test_bad_data_identification(self, capsys):
        assert estimate_main(["--case", "case14", "--bad-rows", "1"]) == 0
        out = capsys.readouterr().out
        assert "injected gross errors" in out
        assert "identification" in out


class TestDecomposeCli:
    def test_case118_default(self, capsys):
        assert decompose_main(["--case", "case118"]) == 0
        out = capsys.readouterr().out
        assert "9 subsystems" in out
        assert "Step-1 mapping" in out
        assert "Step-2 mapping" in out
        assert "nwiceb" in out  # the 3-cluster testbed

    def test_custom_cluster_count(self, capsys):
        assert decompose_main(
            ["--case", "synthetic:4x10", "--subsystems", "4", "--clusters", "2"]
        ) == 0
        assert "cluster0" in capsys.readouterr().out


class TestSessionCli:
    def test_small_session(self, capsys):
        rc = session_main(
            ["--case", "synthetic:4x10", "--subsystems", "4", "--frames", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim total" in out
        assert "Vm RMSE" in out

    def test_with_inproc_fabric(self, capsys):
        rc = session_main(
            ["--case", "synthetic:4x10", "--subsystems", "4", "--frames", "1",
             "--fabric"]
        )
        assert rc == 0
