"""Tests for the message-level DSE simulation."""

import numpy as np
import pytest

from repro.cluster import pnnl_testbed
from repro.core import ClusterMapper, simulate_dse_message_level
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


@pytest.fixture(scope="module")
def sim_setup(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    result = DistributedStateEstimator(dec, ms).run()
    topo = pnnl_testbed()
    mapping = ClusterMapper(topo, seed=0).map_step1(dec, 1.0)
    return dec, result, mapping, topo


class TestMessageLevelSimulation:
    def test_timeline_monotone(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        assert 0 < tl.step1_done
        prev = tl.step1_done
        for t in tl.round_done:
            assert t > prev
            prev = t
        assert tl.total_time == pytest.approx(tl.round_done[-1])

    def test_step1_phase_is_slowest_estimator(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        slowest = max(r.step1_time for r in result.records.values())
        assert tl.step1_done == pytest.approx(slowest)

    def test_all_subsystems_finish(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        assert set(tl.per_subsystem_finish) == set(range(dec.m))
        assert max(tl.per_subsystem_finish.values()) == pytest.approx(tl.total_time)

    def test_bytes_match_dse_accounting(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        assert tl.bytes_communicated == pytest.approx(
            result.total_bytes_exchanged
        )

    def test_middleware_adds_latency(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        with_mw = simulate_dse_message_level(
            dec, result, mapping, topo, use_middleware=True
        )
        without = simulate_dse_message_level(
            dec, result, mapping, topo, use_middleware=False
        )
        assert with_mw.total_time > without.total_time
        # ...but only slightly: the exchanged pseudo measurements are small
        # (the paper's "low overhead" conclusion).  The compute durations
        # are wall-clock measurements and vary with machine load, so bound
        # the *absolute* relay overhead rather than a tight ratio.
        overhead = with_mw.total_time - without.total_time
        assert overhead < 0.1  # seconds, for ~26 KB of pseudo measurements

    def test_message_count(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        expected = result.rounds * sum(
            len(dec.neighbors(s)) for s in range(dec.m)
        )
        assert tl.messages == expected

    def test_rounds_property(self, sim_setup):
        dec, result, mapping, topo = sim_setup
        tl = simulate_dse_message_level(dec, result, mapping, topo)
        assert tl.rounds == result.rounds

    def test_colocated_mapping_reduces_exchange_time(self, sim_setup):
        """Placing everything on one cluster turns the exchange into
        loopback traffic — the degenerate fastest case."""
        dec, result, mapping, topo = sim_setup
        from repro.core.mapper import Mapping

        all_one = Mapping(
            assignment=np.zeros(dec.m, dtype=np.int64),
            cluster_names=[c.name for c in topo.clusters],
            imbalance=3.0,
            edge_cut=0,
        )
        spread = simulate_dse_message_level(dec, result, mapping, topo,
                                            use_middleware=False)
        packed = simulate_dse_message_level(dec, result, all_one, topo,
                                            use_middleware=False)
        assert packed.total_time <= spread.total_time
