"""Tests for the rank-distributed PCG over simulated MPI."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster import pnnl_testbed, simulate_parallel_pcg
from repro.cluster.topology import ClusterSpec, ClusterTopology, LinkSpec
from repro.estimation import pcg_solve


def spd_system(n, seed=0):
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=0.1, random_state=np.random.RandomState(seed))
    A = (A.T @ A + sp.eye(n)).tocsr()
    b = rng.standard_normal(n)
    return A, b


class TestCorrectness:
    @pytest.mark.parametrize("P", [1, 2, 4])
    def test_matches_serial_pcg(self, P):
        A, b = spd_system(60)
        serial = pcg_solve(A, b, preconditioner="jacobi", tol=1e-10)
        topo = pnnl_testbed()
        blocks = np.array_split(np.arange(60), P)
        placement = [topo.clusters[i % 3].name for i in range(P)]
        res = simulate_parallel_pcg(A, b, blocks, topo, placement, tol=1e-10)
        assert res.converged
        assert res.n_ranks == P
        assert np.allclose(res.x, serial.x, atol=1e-8)
        # identical Krylov trajectory -> same iteration count (±1 for the
        # residual-norm test ordering)
        assert abs(res.iterations - serial.iterations) <= 1

    def test_uneven_blocks(self):
        A, b = spd_system(30, seed=1)
        topo = pnnl_testbed()
        blocks = [np.arange(0, 5), np.arange(5, 25), np.arange(25, 30)]
        res = simulate_parallel_pcg(
            A, b, blocks, topo, ["nwiceb", "chinook", "catamount"], tol=1e-10
        )
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-7)

    def test_zero_rhs(self):
        A, _ = spd_system(10)
        topo = pnnl_testbed()
        res = simulate_parallel_pcg(
            A, np.zeros(10), [np.arange(10)], topo, ["nwiceb"]
        )
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x == 0)


class TestValidation:
    def test_bad_partition_rejected(self):
        A, b = spd_system(10)
        topo = pnnl_testbed()
        with pytest.raises(ValueError, match="partition"):
            simulate_parallel_pcg(A, b, [np.arange(5)], topo, ["nwiceb"])

    def test_placement_length_checked(self):
        A, b = spd_system(10)
        topo = pnnl_testbed()
        with pytest.raises(ValueError, match="placement"):
            simulate_parallel_pcg(A, b, [np.arange(10)], topo, ["nwiceb", "chinook"])

    def test_non_spd_rejected(self):
        A = sp.diags([-1.0, 1.0]).tocsr()
        topo = pnnl_testbed()
        with pytest.raises(ValueError, match="diagonal"):
            simulate_parallel_pcg(
                A, np.ones(2), [np.arange(2)], topo, ["nwiceb"]
            )


class TestTimingModel:
    def test_single_rank_has_no_communication(self):
        A, b = spd_system(40)
        topo = pnnl_testbed()
        res = simulate_parallel_pcg(A, b, [np.arange(40)], topo, ["nwiceb"])
        assert res.messages == 0
        assert res.bytes_communicated == 0

    def test_colocated_ranks_faster_than_spread(self):
        """Loopback halo exchange beats LAN halo exchange."""
        A, b = spd_system(60, seed=2)
        topo = pnnl_testbed()
        blocks = np.array_split(np.arange(60), 3)
        same = simulate_parallel_pcg(
            A, b, blocks, topo, ["nwiceb"] * 3, tol=1e-10
        )
        spread = simulate_parallel_pcg(
            A, b, blocks, topo, ["nwiceb", "chinook", "catamount"], tol=1e-10
        )
        assert same.converged and spread.converged
        assert same.sim_time < spread.sim_time

    def test_messages_scale_with_ranks_and_iterations(self):
        A, b = spd_system(40, seed=3)
        topo = pnnl_testbed()
        blocks = np.array_split(np.arange(40), 2)
        res = simulate_parallel_pcg(
            A, b, blocks, topo, ["nwiceb", "chinook"], tol=1e-10
        )
        # allgather (gather+bcast) + barrier per phase, ~3 phases per
        # iteration, 2 ranks: messages grow linearly with iterations
        assert res.messages >= 4 * res.iterations

    def test_slow_link_slows_solve(self):
        A, b = spd_system(40, seed=4)
        fast = ClusterTopology(
            clusters=[ClusterSpec(name="a"), ClusterSpec(name="b")],
            default_link=LinkSpec(latency=1e-6, bandwidth=10e9),
        )
        slow = ClusterTopology(
            clusters=[ClusterSpec(name="a"), ClusterSpec(name="b")],
            default_link=LinkSpec(latency=5e-3, bandwidth=10e6),
        )
        blocks = np.array_split(np.arange(40), 2)
        t_fast = simulate_parallel_pcg(A, b, blocks, fast, ["a", "b"]).sim_time
        t_slow = simulate_parallel_pcg(A, b, blocks, slow, ["a", "b"]).sim_time
        assert t_slow > 10 * t_fast
