"""Chaos tests for the sharded serving tier.

The contract under load + injected faults: every **accepted** request
either completes or fails with a typed error (``ServiceOverloaded`` /
``DeadlineExceeded`` / ``ReplicaLost``) — no hangs, no silent loss — and
a seeded :class:`~repro.faults.plan.FaultPlan` replays bit-for-bit
(``FaultInjector.fired_summary`` is the witness).

The replicas here run ``ProcessPoolBackend`` executors with
``batch_solve=False`` so contingency traffic fans out through the pool,
where the PR-5 ``("worker", "kill")`` fault layer lives: the plan kills a
live worker mid-load, the crashed replica surfaces ``WorkerCrash``, and
the router re-hashes the stranded requests onto the survivors.
"""

import numpy as np
import pytest

from repro import faults
from repro.contingency import enumerate_n1
from repro.dse import decompose, dse_pmu_placement
from repro.faults import FaultPlan
from repro.measurements import full_placement, generate_measurements
from repro.parallel import ProcessPoolBackend
from repro.serving import (
    LoadGenerator,
    ScenarioMix,
    ScenarioService,
    ShardRouter,
)


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def chaos14(net14, pf14):
    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(11)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    safe, _ = enumerate_n1(net14)
    return dec, ms, tuple(safe[:6])


def _proc_replica(dec, ms, *, retries=0):
    # batch_solve=False: contingencies fan out through the process pool,
    # exposing them to the "worker" fault layer
    return ScenarioService(
        dec, ms,
        executor=ProcessPoolBackend(1, max_task_retries=retries),
        max_batch=4, flush_latency=1e-3, batch_solve=False,
    )


def _kill_plan(seed):
    """Kill the worker running the first pool task, exactly once."""
    return FaultPlan(seed=seed).add("worker", "kill", key=0, count=1)


def _offer_under_kill(dec, ms, cons, *, seed, n_shards, n_requests):
    mix = ScenarioMix(
        ms, contingencies=cons, frame_weight=0.0, contingency_weight=1.0
    )
    shards = {
        f"s{i}": _proc_replica(dec, ms) for i in range(n_shards)
    }
    with ShardRouter(shards, grid="chaos") as router:
        report = LoadGenerator(router, mix, seed=seed).run(
            rate=40.0, n_requests=n_requests,
            fault_plan=_kill_plan(seed), wait_timeout=120.0,
        )
    return router, report


def _fully_accounted(report):
    outcomes = (
        report.n_completed + report.n_shed_queue_full
        + report.n_shed_deadline + report.n_shed_lost + report.n_failed
    )
    return outcomes == report.n_offered and report.n_hung == 0


class TestReplicaKillMidLoad:
    def test_kill_rehashes_to_survivor_nothing_lost(self, chaos14):
        dec, ms, cons = chaos14
        router, report = _offer_under_kill(
            dec, ms, cons, seed=21, n_shards=2, n_requests=14
        )
        # the plan fired exactly one worker kill...
        assert sum(report.faults_fired.values()) == 1
        (fired_key,) = report.faults_fired
        assert "kill" in fired_key
        # ...which cost one replica; its requests re-hashed and completed
        assert router.stats.replicas_lost == 1
        assert router.stats.rehashed >= 1
        assert report.n_completed == report.n_offered
        assert report.n_hung == 0 and report.n_failed == 0

    def test_no_survivor_fails_typed_never_hangs(self, chaos14):
        dec, ms, cons = chaos14
        router, report = _offer_under_kill(
            dec, ms, cons, seed=22, n_shards=1, n_requests=10
        )
        assert router.stats.replicas_lost == 1
        # the crashed batch had nowhere to go: typed ReplicaLost, and
        # later arrivals were refused typed — nothing hung, nothing vanished
        assert report.n_shed_lost >= 1
        assert _fully_accounted(report)
        assert report.n_failed == 0

    def test_fault_plan_replays_bit_for_bit(self, chaos14):
        dec, ms, cons = chaos14
        _, first = _offer_under_kill(
            dec, ms, cons, seed=33, n_shards=2, n_requests=10
        )
        _, second = _offer_under_kill(
            dec, ms, cons, seed=33, n_shards=2, n_requests=10
        )
        assert first.faults_fired  # the plan really fired
        assert first.faults_fired == second.faults_fired
        assert _fully_accounted(first) and _fully_accounted(second)
        assert first.n_completed == second.n_completed


class TestSingleServiceDegradedReuse:
    def test_pool_respawn_absorbs_the_kill(self, chaos14):
        """Without a router, the PR-5 supervised pool is the last line:
        the killed worker respawns warm and the stranded task re-runs."""
        dec, ms, cons = chaos14
        mix = ScenarioMix(
            ms, contingencies=cons, frame_weight=0.0, contingency_weight=1.0
        )
        with _proc_replica(dec, ms, retries=2) as svc:
            report = LoadGenerator(svc, mix, seed=44).run(
                rate=30.0, n_requests=6,
                fault_plan=_kill_plan(44), wait_timeout=120.0,
            )
            assert svc.executor.respawns >= 1
        assert sum(report.faults_fired.values()) == 1
        assert report.n_completed == report.n_offered
        assert report.n_hung == 0
