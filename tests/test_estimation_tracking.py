"""Tests for the tracking (forecasting-aided) estimator."""

import numpy as np
import pytest

from repro.estimation import TrackingEstimator, estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, case118
from repro.measurements import ScadaSystem, full_placement, generate_measurements


class TestTrackingEstimator:
    def test_warm_start_cuts_iterations(self, net118):
        scada = ScadaSystem(net118, full_placement(net118), seed=0)
        tracker = TrackingEstimator(net118)
        frames = scada.frames(4)
        warm = []
        cold = []
        for f in frames:
            warm.append(tracker.step(f.mset).result.iterations)
            cold.append(estimate_state(net118, f.mset).iterations)
        # after the cold first scan, tracking needs fewer iterations
        assert all(w <= c for w, c in zip(warm[1:], cold[1:]))
        assert sum(warm[1:]) < sum(cold[1:])

    def test_innovation_tracks_noise_level(self, net14, pf14):
        tracker = TrackingEstimator(net14)
        plac = full_placement(net14)
        rng = np.random.default_rng(0)
        # warm up at the true state
        tracker.step(generate_measurements(net14, plac, pf14, rng=rng))
        lo = tracker.step(
            generate_measurements(net14, plac, pf14, noise_level=0.5, rng=rng)
        )
        hi = tracker.step(
            generate_measurements(net14, plac, pf14, noise_level=4.0, rng=rng)
        )
        assert hi.innovation_rms > lo.innovation_rms

    def test_anomaly_on_sudden_load_jump(self, net118):
        """A big operating-point change flags an anomaly; noise does not."""
        plac = full_placement(net118)
        rng = np.random.default_rng(1)
        pf0 = run_ac_power_flow(net118)
        tracker = TrackingEstimator(net118, anomaly_threshold=5.0)
        for _ in range(3):
            f = tracker.step(generate_measurements(net118, plac, pf0, rng=rng))
            assert not f.anomaly

        jumped = net118.copy()
        jumped.Pd = net118.Pd * 1.4
        jumped.Qd = net118.Qd * 1.4
        pf1 = run_ac_power_flow(jumped)
        f = tracker.step(generate_measurements(jumped, plac, pf1, rng=rng))
        assert f.anomaly

    def test_recovers_after_anomaly(self, net118):
        """The tracker re-anchors after an event and resumes clean tracking."""
        plac = full_placement(net118)
        rng = np.random.default_rng(2)
        pf0 = run_ac_power_flow(net118)
        jumped = net118.copy()
        jumped.Pd = net118.Pd * 1.4
        jumped.Qd = net118.Qd * 1.4
        pf1 = run_ac_power_flow(jumped)

        tracker = TrackingEstimator(net118)
        tracker.step(generate_measurements(net118, plac, pf0, rng=rng))
        tracker.step(generate_measurements(net118, plac, pf0, rng=rng))
        tracker.step(generate_measurements(jumped, plac, pf1, rng=rng))  # event
        after = tracker.step(generate_measurements(jumped, plac, pf1, rng=rng))
        assert not after.anomaly

    def test_prediction_close_on_steady_state(self, net14, pf14):
        plac = full_placement(net14)
        rng = np.random.default_rng(3)
        tracker = TrackingEstimator(net14)
        for _ in range(4):
            tracker.step(generate_measurements(net14, plac, pf14, rng=rng))
        vm_pred, va_pred = tracker.predict()
        assert np.abs(vm_pred - pf14.Vm).max() < 5e-3

    def test_reset_forgets(self, net14, pf14):
        plac = full_placement(net14)
        rng = np.random.default_rng(4)
        tracker = TrackingEstimator(net14)
        tracker.step(generate_measurements(net14, plac, pf14, rng=rng))
        tracker.reset()
        vm_pred, _ = tracker.predict()
        assert np.all(vm_pred == 1.0)
        assert tracker.frames == []

    def test_parameter_validation(self, net14):
        with pytest.raises(ValueError):
            TrackingEstimator(net14, alpha=0.0)
        with pytest.raises(ValueError):
            TrackingEstimator(net14, beta=1.5)
