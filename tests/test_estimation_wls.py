"""Tests for the WLS estimator core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import EstimationError, WlsEstimator, estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, synthetic_grid
from repro.measurements import (
    MeasType,
    Measurement,
    MeasurementSet,
    full_placement,
    generate_measurements,
    pmu_placement,
    scada_placement,
    true_values,
)


class TestExactRecovery:
    def test_zero_noise_recovers_state(self, net14, pf14, rng):
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        res = estimate_state(net14, ms)
        assert res.converged
        assert np.allclose(res.Vm, pf14.Vm, atol=1e-10)
        assert np.allclose(res.Va, pf14.Va, atol=1e-10)

    def test_zero_noise_objective_zero(self, net14, pf14, rng):
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        res = estimate_state(net14, ms)
        assert res.objective == pytest.approx(0.0, abs=1e-15)

    def test_reference_angle_respected(self, net14, pf14, rng):
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        est = WlsEstimator(net14, ms)
        res = est.estimate(reference_angle=pf14.Va[net14.slack_buses[0]])
        assert np.allclose(res.Va, pf14.Va, atol=1e-10)


class TestNoisyEstimation:
    def test_error_scales_with_noise(self, net118, pf118):
        errs = []
        for lvl in (0.5, 2.0):
            rng = np.random.default_rng(11)
            ms = generate_measurements(
                net118, full_placement(net118), pf118, noise_level=lvl, rng=rng
            )
            res = estimate_state(net118, ms)
            errs.append(res.state_error(pf118.Vm, pf118.Va)["vm_rmse"])
        assert errs[1] > errs[0]
        assert errs[1] / errs[0] == pytest.approx(4.0, rel=0.4)

    def test_estimate_beats_raw_measurements(self, net118, pf118):
        """Redundancy pays: the estimate is closer to truth than raw V meters."""
        rng = np.random.default_rng(5)
        plac = full_placement(net118)
        ms = generate_measurements(net118, plac, pf118, rng=rng)
        res = estimate_state(net118, ms)
        raw_vm = ms.z[ms.rows(MeasType.V_MAG)]
        raw_rmse = np.sqrt(np.mean((raw_vm - pf118.Vm) ** 2))
        assert res.state_error(pf118.Vm, pf118.Va)["vm_rmse"] < raw_rmse

    def test_scada_only_estimation(self, net118, pf118):
        rng = np.random.default_rng(2)
        ms = generate_measurements(
            net118, scada_placement(net118), pf118, rng=rng
        )
        res = estimate_state(net118, ms)
        assert res.converged
        err = res.state_error(pf118.Vm, pf118.Va)
        assert err["vm_rmse"] < 5e-3
        assert err["va_rmse"] < 5e-3

    def test_pmu_angles_fix_absolute_reference(self, net14, pf14):
        """With PMU angles, the estimate recovers absolute angles."""
        rng = np.random.default_rng(1)
        plac = full_placement(net14).merged_with(pmu_placement(net14))
        ms = generate_measurements(net14, plac, pf14, noise_level=0.0, rng=rng)
        est = WlsEstimator(net14, ms)
        assert est.has_pmu_angles
        assert est.n_states == 2 * 14  # no column dropped
        res = est.estimate()
        assert np.allclose(res.Va, pf14.Va, atol=1e-9)


class TestSolverEquivalence:
    @pytest.mark.parametrize("solver", ["lu", "pcg", "lsqr"])
    def test_all_solvers_agree(self, net14, pf14, solver):
        rng = np.random.default_rng(3)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        res = estimate_state(net14, ms, solver=solver)
        ref = estimate_state(net14, ms, solver="lu")
        assert np.allclose(res.Vm, ref.Vm, atol=1e-7)
        assert np.allclose(res.Va, ref.Va, atol=1e-7)

    @pytest.mark.parametrize("prec", ["jacobi", "ichol"])
    def test_pcg_preconditioners(self, net118, pf118, prec):
        rng = np.random.default_rng(4)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        est = WlsEstimator(net118, ms, solver="pcg", pcg_preconditioner=prec)
        res = est.estimate()
        assert res.converged


class TestFailureModes:
    def test_underdetermined_raises(self, net14):
        ms = MeasurementSet([Measurement(MeasType.V_MAG, 0, 1.0, 0.01)])
        with pytest.raises(EstimationError, match="underdetermined"):
            estimate_state(net14, ms)

    def test_unobservable_raises(self, net14, pf14):
        # Plenty of measurements but only voltage magnitudes: angles
        # unobservable -> singular gain.
        ms = MeasurementSet(
            [Measurement(MeasType.V_MAG, b, 1.0, 0.01) for b in range(14)] * 2
        )
        with pytest.raises(EstimationError):
            estimate_state(net14, ms)

    def test_unknown_solver(self, net14, pf14, rng):
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        with pytest.raises(EstimationError, match="unknown method"):
            estimate_state(net14, ms, solver="qr-magic")


class TestConvergenceBehaviour:
    def test_step_norms_decrease(self, net118, pf118):
        rng = np.random.default_rng(6)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        res = estimate_state(net118, ms)
        # Gauss-Newton is locally quadratic: last step far smaller than first.
        assert res.step_norms[-1] < 1e-6 * res.step_norms[0]

    def test_dof_accounting(self, net14, pf14, rng):
        plac = full_placement(net14)
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        res = estimate_state(net14, ms)
        assert res.dof == len(plac) - (2 * 14 - 1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_estimation_on_random_grids(self, seed):
        """Property: estimation on any synthetic grid converges and lands
        within measurement accuracy of the truth."""
        net = synthetic_grid(n_areas=3, buses_per_area=8, seed=seed)
        pf = run_ac_power_flow(net, flat_start=True)
        rng = np.random.default_rng(seed)
        ms = generate_measurements(net, full_placement(net), pf, rng=rng)
        res = estimate_state(net, ms)
        assert res.converged
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 5e-3
