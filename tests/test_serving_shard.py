"""The sharded serving tier: hash ring, router, autoscaler, loadgen.

Contracts under test:

- the consistent-hash ring balances keys and moves only the removed
  node's arcs on membership changes;
- the router serves the same answers as a direct ``ScenarioService``,
  keeps scenario-key affinity, spills overload in ring order, and turns
  every replica failure into *re-hash or typed error* — never silence;
- the autoscaler applies hysteresis + cooldown and is bitwise-inert
  when disabled (off is the default);
- the load generator's arrival schedule and request mix are functions
  of the seed alone.
"""

import threading
import time

import numpy as np
import pytest

from repro.contingency import enumerate_n1
from repro.dse import decompose, dse_pmu_placement
from repro.grid.delta import NetworkDelta
from repro.measurements import full_placement, generate_measurements
from repro.middleware import ConsistentHashRing, EmptyRing, MiddlewareFabric
from repro.middleware.errors import DeadlineExceeded
from repro.parallel import (
    ProcessPoolBackend,
    SerialExecutor,
    ThreadPoolBackend,
)
from repro.serving import (
    AutoscalePolicy,
    ContingencyRequest,
    EstimationRequest,
    LoadGenerator,
    PoolAutoscaler,
    ReplicaLost,
    ScenarioMix,
    ScenarioService,
    ServiceOverloaded,
    ServiceStats,
    ShardRouter,
    poisson_arrivals,
    request_key,
)


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------

class TestConsistentHashRing:
    def test_balance_and_determinism(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        split = ring.load_split(range(8000))
        assert set(split) == {"a", "b", "c", "d"}
        mean = 8000 / 4
        for count in split.values():
            assert 0.5 * mean < count < 1.6 * mean
        # same nodes, any insertion order: identical placement
        ring2 = ConsistentHashRing(["d", "b", "a", "c"])
        assert all(ring.route(k) == ring2.route(k) for k in range(500))

    def test_removal_moves_only_the_lost_arcs(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {k: ring.route(k) for k in range(2000)}
        ring.remove("b")
        after = {k: ring.route(k) for k in range(2000)}
        moved = [k for k in before if before[k] != after[k]]
        # exactly the keys that lived on "b" moved, nothing else
        assert moved == [k for k in before if before[k] == "b"]
        assert all(after[k] in ("a", "c") for k in moved)

    def test_preference_is_the_handoff_order(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        pref = ring.preference("key-7")
        assert len(pref) == 3 and pref[0] == ring.route("key-7")
        ring.remove(pref[0])
        assert ring.route("key-7") == pref[1]
        ring.remove(pref[1])
        assert ring.route("key-7") == pref[2]

    def test_empty_ring_and_membership(self):
        ring = ConsistentHashRing(vnodes=8)
        with pytest.raises(EmptyRing):
            ring.route("x")
        with pytest.raises(EmptyRing):
            ring.preference("x")
        ring.add("a")
        ring.add("a")  # idempotent
        assert len(ring) == 1 and "a" in ring
        ring.remove("missing")  # idempotent
        assert ring.route("x") == "a"

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRing(vnodes=0)


# ---------------------------------------------------------------------------
# Routing keys
# ---------------------------------------------------------------------------

class TestRequestKey:
    def test_scenario_keys_by_label_and_region(self):
        labelled = EstimationRequest(
            delta=NetworkDelta.branch_outage(3, label="out-3")
        )
        assert request_key(labelled, grid="g") == ("g", "scenario", "out-3")
        bare = EstimationRequest(delta=NetworkDelta.branch_outage(3))
        again = EstimationRequest(delta=NetworkDelta.branch_outage(3))
        assert request_key(bare) == request_key(again)
        other = EstimationRequest(delta=NetworkDelta.branch_outage(4))
        assert request_key(bare) != request_key(other)

    def test_contingency_and_frame_keys(self, net14):
        safe, _ = enumerate_n1(net14)
        con = ContingencyRequest(safe[0])
        assert request_key(con, grid="g") == ("g", "n-1", safe[0].branch)
        assert request_key(EstimationRequest()) is None


# ---------------------------------------------------------------------------
# Router behaviour over real replicas (IEEE-14, tiny batches)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serving14(net14, pf14):
    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(3)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    return dec, ms


def _replica(dec, ms, **kw):
    kw.setdefault("executor", "threads:1")
    kw.setdefault("max_batch", 8)
    kw.setdefault("flush_latency", 1e-3)
    kw.setdefault("batch_solve", True)
    return ScenarioService(dec, ms, **kw)


class TestShardRouter:
    def test_routed_results_match_direct_service(self, serving14):
        dec, ms = serving14
        with ScenarioService(dec, ms, batch_solve=True) as direct:
            ref = direct.submit_estimation().result(timeout=60).value
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            got = router.submit_estimation().result(timeout=60)
        assert got.shard in ("s0", "s1")
        assert np.allclose(got.value.Vm, ref.Vm, atol=1e-9)
        assert np.allclose(got.value.Va, ref.Va, atol=1e-9)

    def test_scenario_affinity_and_spread(self, serving14):
        dec, ms = serving14
        deltas = [
            NetworkDelta.load_override([b], Pd=[0.08], label=f"region-{b}")
            for b in range(6)
        ]
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            homes = {}
            for d in deltas:
                first = router.submit_estimation(delta=d).result(60).shard
                second = router.submit_estimation(delta=d).result(60).shard
                assert first == second  # affinity: same region, same shard
                homes[d.label] = first
            # keyless frames spread over both shards
            shards = {
                router.submit_estimation().result(60).shard
                for _ in range(12)
            }
            assert shards == {"s0", "s1"}
        assert router.stats.completed == 2 * len(deltas) + 12

    def test_overload_spills_then_fails_typed(self, serving14):
        dec, ms = serving14
        slow = _replica(dec, ms, max_queue=1, max_batch=1, flush_latency=0.0)
        with ShardRouter({"only": slow}, grid="g") as router:
            # wedge the single replica's dispatcher so its queue stays full
            slow._ensure_dispatcher()
            release = threading.Event()
            blocked = threading.Event()

            def _block(batch, _orig=slow._execute_batch):
                blocked.set()
                release.wait(timeout=10.0)
                _orig(batch)

            slow._execute_batch = _block
            first = router.submit_estimation()
            assert blocked.wait(timeout=5.0)
            queued = router.submit_estimation()  # backlog now at max_queue
            shed = router.submit_estimation()
            with pytest.raises(ServiceOverloaded):
                shed.result(timeout=10.0)
            release.set()
            first.result(timeout=60)
            queued.result(timeout=60)
        assert router.stats.shed == 1
        # per-cause counter rode along on the replica
        assert slow.stats.shed_causes == {"queue_full": 1}

    def test_graceful_drain_completes_queued_work(self, serving14):
        dec, ms = serving14
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            futures = [router.submit_estimation() for _ in range(6)]
            router.remove_shard("s0", drain=True)  # drains, never drops
            assert all(f.result(timeout=60) for f in futures)
            assert router.live_shards() == ["s1"]
            # traffic keeps flowing on the survivor
            assert router.submit_estimation().result(60).shard == "s1"

    def test_kill_shard_rehashes_not_loses(self, serving14):
        dec, ms = serving14
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            futures = [router.submit_estimation() for _ in range(10)]
            router.kill_shard("s0")
            results = [f.result(timeout=60) for f in futures]
            assert all(r.value is not None for r in results)
            more = router.submit_estimation().result(timeout=60)
            assert more.shard == "s1"

    def test_restore_shard_readmits_killed_replica(self, serving14):
        dec, ms = serving14
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            router.kill_shard("s0")
            assert router.live_shards() == ["s1"]
            # restart: same name, fresh service — takes back its slice
            router.restore_shard("s0", _replica(dec, ms))
            assert router.live_shards() == ["s0", "s1"]
            got = router.submit_estimation().result(timeout=60)
            assert got.shard in ("s0", "s1")
            assert router.stats.restored == 1
            assert router.stats.to_dict()["restored"] == 1

    def test_all_shards_lost_fails_typed(self, serving14):
        dec, ms = serving14
        with ShardRouter({"s0": _replica(dec, ms)}, grid="g") as router:
            warm = router.submit_estimation()
            warm.result(timeout=60)
            router.kill_shard("s0")
            with pytest.raises((ReplicaLost, ServiceOverloaded)):
                router.submit_estimation().result(timeout=10.0)

    def test_membership_and_validation(self, serving14):
        dec, ms = serving14
        router = ShardRouter({"s0": _replica(dec, ms)}, grid="g")
        with router:
            joiner = _replica(dec, ms)
            with pytest.raises(ValueError, match="already present"):
                router.add_shard("s0", joiner)
            router.add_shard("s1", joiner)
            assert router.shard_names == ["s0", "s1"]
            with pytest.raises(TypeError, match="EstimationRequest"):
                router.submit("nonsense")
        with pytest.raises(RuntimeError, match="closed"):
            router.submit_estimation()
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter({})

    def test_deadline_is_final_not_retried(self, serving14):
        dec, ms = serving14
        slow = _replica(dec, ms, request_timeout=0.05, max_batch=1,
                        flush_latency=0.0)
        with ShardRouter(
            {"slow": slow, "other": _replica(dec, ms)}, grid="g"
        ) as router:
            # pick a key the ring places on the wedged replica
            probe = EstimationRequest()
            key = next(
                ("force", i) for i in range(256)
                if router.shard_for(probe, key=("force", i)) == "slow"
            )
            slow._ensure_dispatcher()
            blocked = threading.Event()
            release = threading.Event()

            def _block(batch, _orig=slow._execute_batch):
                blocked.set()
                release.wait(timeout=10.0)
                _orig(batch)

            slow._execute_batch = _block
            fut = router.submit(EstimationRequest(), key=key)
            assert blocked.wait(timeout=5.0)
            time.sleep(0.2)  # well past the 0.05s deadline
            release.set()
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=10.0)
            # stale requests are never re-dispatched to a healthy shard
            assert router.stats.rehashed == 0
            assert slow.stats.shed_causes.get("deadline") == 1


# ---------------------------------------------------------------------------
# ServiceStats: streaming quantiles + shed causes
# ---------------------------------------------------------------------------

class TestServiceStatsStreaming:
    def test_streaming_quantiles_track_exact_percentiles(self):
        stats = ServiceStats()
        rng = np.random.default_rng(0)
        samples = rng.uniform(1e-3, 0.5, size=4000)
        for s in samples:
            stats.record_request(float(s))
        exact50 = float(np.percentile(samples, 50))
        exact99 = float(np.percentile(samples, 99))
        # geometric factor-2 buckets: estimates land within the bucket
        assert 0.5 * exact50 <= stats.p50 <= 2.0 * exact50
        assert 0.5 * exact99 <= stats.p99 <= 2.0 * exact99
        assert stats.p50 <= stats.p99

    def test_to_dict_carries_shed_causes(self):
        stats = ServiceStats()
        stats.record_request(0.01)
        stats.record_batch(1)
        stats.record_shed("queue_full")
        stats.record_shed("queue_full")
        stats.record_shed("deadline")
        d = stats.to_dict()
        assert d["n_requests"] == 1 and d["n_shed"] == 3
        assert d["shed_causes"] == {"queue_full": 2, "deadline": 1}
        assert d["latency_p50_s"] > 0.0

    def test_service_records_per_cause_metrics(self, serving14):
        from repro import obs

        dec, ms = serving14
        obs.configure(enabled=True, reset=True)
        try:
            with ScenarioService(dec, ms, max_batch=1, max_queue=1) as svc:
                svc._ensure_dispatcher()
                release = threading.Event()
                blocked = threading.Event()

                def _block(batch, _orig=svc._execute_batch):
                    blocked.set()
                    release.wait(timeout=10.0)
                    _orig(batch)

                svc._execute_batch = _block
                first = svc.submit_estimation()
                assert blocked.wait(timeout=5.0)
                svc.submit_estimation()
                shed = svc.submit_estimation()
                with pytest.raises(ServiceOverloaded):
                    shed.result(timeout=5.0)
                release.set()
                first.result(timeout=60)
            counter = obs.metrics().get("serving.shed", cause="queue_full")
            assert counter is not None and counter.value == 1
        finally:
            obs.configure(enabled=False, reset=True)


# ---------------------------------------------------------------------------
# Executor resize (the autoscaler's actuator)
# ---------------------------------------------------------------------------

class TestExecutorResize:
    def test_serial_cannot_resize(self):
        assert SerialExecutor().resize(4) is False

    def test_thread_pool_resize(self):
        with ThreadPoolBackend(1) as pool:
            assert pool.map(lambda x: x * 2, [1, 2]) == [2, 4]
            assert pool.resize(3) is True
            assert pool.n_workers == 3
            assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        with pytest.raises(ValueError, match="n_workers"):
            ThreadPoolBackend(2).resize(0)

    def test_process_pool_resize_rebuilds_warm_contexts(self):
        with ProcessPoolBackend(1) as pool:
            pool.initialize("k", _build_ctx, 7)
            assert pool.map(_read_ctx, [0, 1]) == [7, 7]
            assert pool.resize(2) is True
            assert pool.n_workers == 2
            # the resized pool rebuilt the registered context
            assert pool.map(_read_ctx, [0, 1]) == [7, 7]


def _build_ctx(payload):
    return payload


def _read_ctx(_item):
    from repro.parallel import worker_context

    return worker_context("k")


# ---------------------------------------------------------------------------
# Autoscaler: hysteresis, cooldown, clamping, disabled-inert
# ---------------------------------------------------------------------------

class _FakeExecutor:
    def __init__(self, n=1):
        self.n_workers = n
        self.resized = []

    def resize(self, n):
        self.resized.append(n)
        self.n_workers = n
        return True


class _FakeStats:
    p99 = 0.0


class _FakeShard:
    def __init__(self, depth=0, n_workers=1):
        self.depth = depth
        self.executor = _FakeExecutor(n_workers)
        self.stats = _FakeStats()

    def queue_depth(self):
        return self.depth


class _FakeRouter:
    def __init__(self, shards):
        self.shards = shards

    def live_items(self):
        return list(self.shards.items())


class TestPoolAutoscaler:
    POLICY = AutoscalePolicy(
        min_workers=1, max_workers=3, scale_up_depth=4,
        scale_down_depth=0, hysteresis=2, cooldown=10.0,
    )

    def _scaler(self, shards, *, enabled=True, t0=100.0):
        clock = {"t": t0}
        scaler = PoolAutoscaler(
            self.POLICY, enabled=enabled, clock=lambda: clock["t"]
        )
        scaler.attach(_FakeRouter(shards))
        return scaler, clock

    def test_disabled_is_inert(self):
        shard = _FakeShard(depth=100)
        scaler, _ = self._scaler({"s": shard}, enabled=False)
        for _ in range(10):
            assert scaler.evaluate() == {}
            assert scaler.step() == {}
        scaler.start()
        assert scaler._thread is None  # no loop spawned
        assert shard.executor.resized == []

    def test_hysteresis_requires_consecutive_votes(self):
        shard = _FakeShard(depth=10)
        scaler, clock = self._scaler({"s": shard})
        assert scaler.step() == {}            # first vote: no action yet
        assert scaler.step() == {"s": 2}      # second consecutive: scale up
        assert shard.executor.n_workers == 2
        # a neutral tick resets the streak
        shard.depth = 2
        clock["t"] += 60.0
        assert scaler.step() == {}
        shard.depth = 10
        assert scaler.step() == {}            # streak restarted at 1

    def test_cooldown_freezes_after_action(self):
        shard = _FakeShard(depth=10)
        scaler, clock = self._scaler({"s": shard})
        scaler.step()
        assert scaler.step() == {"s": 2}
        assert scaler.step() == {}            # streak rebuilding after reset
        assert scaler.step() == {}            # streak hot, cooldown blocks
        clock["t"] += 11.0                    # cooldown expired
        assert scaler.step() == {"s": 3}

    def test_clamps_to_bounds_and_scales_down(self):
        shard = _FakeShard(depth=0, n_workers=3)
        scaler, clock = self._scaler({"s": shard})
        scaler.step()
        assert scaler.step() == {"s": 2}      # idle: shrink one at a time
        clock["t"] += 11.0
        scaler.step()
        assert scaler.step() == {"s": 1}
        clock["t"] += 11.0
        scaler.step()
        assert scaler.step() == {}            # already at min_workers
        up = _FakeShard(depth=50, n_workers=3)
        scaler2, _ = self._scaler({"s": up})
        scaler2.step()
        assert scaler2.step() == {}           # already at max_workers

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            AutoscalePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError, match="scale_up_depth"):
            AutoscalePolicy(scale_up_depth=0, scale_down_depth=0)

    def test_router_integration_scales_a_real_backend(self, serving14):
        dec, ms = serving14
        svc = _replica(dec, ms, executor=ThreadPoolBackend(1), max_batch=1)
        policy = AutoscalePolicy(
            min_workers=1, max_workers=2, scale_up_depth=1,
            scale_down_depth=0, hysteresis=1, cooldown=0.0, interval=0.05,
        )
        scaler = PoolAutoscaler(policy, enabled=True, clock=time.monotonic)
        with ShardRouter({"s0": svc}, grid="g", autoscaler=scaler) as router:
            release = threading.Event()
            svc._ensure_dispatcher()

            def _block(batch, _orig=svc._execute_batch):
                release.wait(timeout=10.0)
                _orig(batch)

            svc._execute_batch = _block
            futures = [router.submit_estimation() for _ in range(6)]
            deadline = time.monotonic() + 5.0
            while not scaler.resizes and time.monotonic() < deadline:
                time.sleep(0.02)
            release.set()
            for f in futures:
                f.result(timeout=60)
        assert scaler.resizes and scaler.resizes[0] == ("s0", 1, 2)


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------

class TestLoadgen:
    def test_arrivals_are_seed_deterministic(self):
        a = poisson_arrivals(100.0, 50, seed=9)
        b = poisson_arrivals(100.0, 50, seed=9)
        c = poisson_arrivals(100.0, 50, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(np.diff(a) > 0)
        assert 50 / a[-1] == pytest.approx(100.0, rel=0.5)
        with pytest.raises(ValueError, match="rate"):
            poisson_arrivals(0.0, 5)

    def test_mix_draws_are_deterministic_and_weighted(self, serving14, net14):
        _dec, ms = serving14
        safe, _ = enumerate_n1(net14)
        deltas = (NetworkDelta.branch_outage(0, label="d0"),)
        mix = ScenarioMix(
            ms, deltas=deltas, contingencies=tuple(safe[:3]),
            frame_weight=1.0, scenario_weight=1.0, contingency_weight=1.0,
        )
        draws1 = [mix.make(np.random.default_rng(4)) for _ in range(8)]
        draws2 = [mix.make(np.random.default_rng(4)) for _ in range(8)]
        assert [type(r) for r in draws1] == [type(r) for r in draws2]
        kinds = {type(r).__name__ for r in
                 (mix.make(np.random.default_rng(s)) for s in range(40))}
        assert kinds == {"EstimationRequest", "ContingencyRequest"}
        with pytest.raises(ValueError, match="drawable"):
            ScenarioMix(ms, frame_weight=0.0).make(np.random.default_rng(0))

    def test_report_over_router_counts_everything(self, serving14, net14):
        dec, ms = serving14
        safe, _ = enumerate_n1(net14)
        mix = ScenarioMix(
            ms, contingencies=tuple(safe[:4]),
            frame_weight=1.0, contingency_weight=1.0,
        )
        with ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)}, grid="g"
        ) as router:
            rep = LoadGenerator(router, mix, seed=5).run(
                rate=80.0, n_requests=24, wait_timeout=60.0
            )
        assert rep.n_offered == 24
        assert rep.n_completed + rep.n_shed_queue_full == 24
        assert rep.n_hung == 0 and rep.n_failed == 0
        assert rep.duration_s > 0 and rep.achieved_rate > 0
        d = rep.to_dict()
        assert d["latency_p99_s"] >= d["latency_p50_s"] > 0.0

    def test_run_sizing_validation(self, serving14):
        dec, ms = serving14
        gen = LoadGenerator(object(), ScenarioMix(ms))
        with pytest.raises(ValueError, match="XOR"):
            gen.run(rate=10.0)
        with pytest.raises(ValueError, match="XOR"):
            gen.run(rate=10.0, n_requests=5, duration=1.0)


# ---------------------------------------------------------------------------
# Shard-addressed routing over the mux fabric
# ---------------------------------------------------------------------------

class TestFabricSharding:
    def test_send_keyed_routes_by_ring(self):
        names = ["se0", "se1", "se2"]
        with MiddlewareFabric(names, fast=True) as fabric:
            ring = fabric.enable_sharding(["se1", "se2"])
            assert ring.nodes == frozenset({"se1", "se2"})
            dst = fabric.send_keyed("se0", ("grid", 7), b"frame")
            assert dst == fabric.shard_for(("grid", 7))
            assert fabric.recv(dst, timeout=5.0) == b"frame"
            # a sender never routes to itself
            assert fabric.shard_for(("k",), exclude="se1") == "se2"

    def test_send_keyed_requires_enable(self):
        with MiddlewareFabric(["a", "b"], fast=True) as fabric:
            with pytest.raises(RuntimeError, match="enable_sharding"):
                fabric.send_keyed("a", "k", b"x")

    def test_enable_sharding_rejects_unknown_site(self):
        fabric = MiddlewareFabric(["a", "b"])
        with pytest.raises(ValueError, match="not a fabric site"):
            fabric.enable_sharding(["a", "zz"])
