"""Tests for runtime adaptation: branch outages and cluster failures."""

import numpy as np
import pytest

from repro.core import (
    ArchitecturePrototype,
    apply_branch_outage,
    apply_cluster_outage,
)
from repro.dse import DistributedStateEstimator, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


@pytest.fixture()
def arch118f():
    arch = ArchitecturePrototype.assemble(case118(), m_subsystems=9, seed=0)
    yield arch
    arch.close()


class TestBranchOutage:
    def test_tie_line_outage_keeps_decomposition(self, arch118f):
        tie = int(arch118f.dec.tie_lines[0])
        before = arch118f.dec.part.copy()
        rep = apply_branch_outage(arch118f, tie)
        assert rep.was_tie_line
        assert not rep.islanded_network
        assert not rep.decomposition_changed
        assert np.array_equal(arch118f.dec.part, before)
        assert arch118f.net.br_status[tie] == 0

    def test_tie_outage_removes_exchange_session(self, arch118f):
        dec = arch118f.dec
        n_ties_before = len(dec.tie_lines)
        tie = int(dec.tie_lines[0])
        apply_branch_outage(arch118f, tie)
        assert len(arch118f.dec.tie_lines) == n_ties_before - 1

    def test_internal_split_reassigns_fragment(self, arch118f):
        """Outage a cut edge inside a subsystem: the stranded fragment must
        join a neighbouring subsystem and connectivity must be restored."""
        from repro.grid.islands import subgraph_components

        dec = arch118f.dec
        net = arch118f.net
        # find an internal branch whose removal splits its subsystem
        target = None
        for s in range(dec.m):
            for k in dec.internal_branches(s):
                net.br_status[k] = 0
                frags = subgraph_components(
                    net.n_bus, net.adjacency_pairs(), dec.buses(s)
                )
                net.br_status[k] = 1
                if len(frags) > 1:
                    target = int(k)
                    break
            if target is not None:
                break
        assert target is not None, "case118 has radial internal branches"
        rep = apply_branch_outage(arch118f, target)
        assert rep.decomposition_changed
        assert arch118f.dec.is_internally_connected()

    def test_islanding_outage_rolled_back(self, arch118f):
        net = arch118f.net
        # branch 9-10 (radial to gen 10) islands the network
        k = int(np.flatnonzero(
            (net.bus_ids[net.f] == 9) & (net.bus_ids[net.t] == 10)
        )[0])
        rep = apply_branch_outage(arch118f, k)
        assert rep.islanded_network
        assert net.br_status[k] == 1  # rolled back

    def test_double_outage_rejected(self, arch118f):
        tie = int(arch118f.dec.tie_lines[0])
        apply_branch_outage(arch118f, tie)
        with pytest.raises(ValueError, match="already out"):
            apply_branch_outage(arch118f, tie)

    def test_bad_branch_rejected(self, arch118f):
        with pytest.raises(ValueError):
            apply_branch_outage(arch118f, 9999)

    def test_dse_still_runs_after_outage(self, arch118f):
        """End-to-end: the repaired decomposition still estimates."""
        tie = int(arch118f.dec.tie_lines[2])
        apply_branch_outage(arch118f, tie)
        net = arch118f.net
        pf = run_ac_power_flow(net)
        rng = np.random.default_rng(0)
        plac = full_placement(net).merged_with(dse_pmu_placement(arch118f.dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        res = DistributedStateEstimator(arch118f.dec, ms).run()
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 3e-3


class TestClusterOutage:
    def test_orphans_replaced(self, arch118f):
        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        rep = apply_cluster_outage(arch118f, "chinook", mapping)
        assert rep.failed_cluster == "chinook"
        assert "chinook" not in rep.survivors
        assert len(rep.orphaned_subsystems) > 0
        # every subsystem now lives on a survivor
        placed = sorted(
            s for subs in rep.new_mapping.as_dict().values() for s in subs
        )
        assert placed == list(range(9))

    def test_balance_after_failure(self, arch118f):
        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        rep = apply_cluster_outage(arch118f, "nwiceb", mapping)
        assert rep.new_mapping.imbalance <= 1.3

    def test_architecture_updated(self, arch118f):
        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        apply_cluster_outage(arch118f, "catamount", mapping)
        names = [c.name for c in arch118f.topology.clusters]
        assert "catamount" not in names
        assert arch118f.mapper.p == 2

    def test_survivor_placements_sticky(self, arch118f):
        """Subsystems on surviving clusters mostly stay put (migration-aware)."""
        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        rep = apply_cluster_outage(arch118f, "chinook", mapping)
        stayed = 0
        total = 0
        for s in range(9):
            old = mapping.cluster_of(s)
            if old == "chinook":
                continue
            total += 1
            if rep.new_mapping.cluster_of(s) == old:
                stayed += 1
        assert stayed >= total - 2  # at most a couple forced moves

    def test_unknown_cluster(self, arch118f):
        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        with pytest.raises(KeyError):
            apply_cluster_outage(arch118f, "nonexistent", mapping)

    def test_last_cluster_cannot_fail(self):
        from repro.cluster import ClusterSpec, ClusterTopology

        arch = ArchitecturePrototype.assemble(
            case118(), m_subsystems=4,
            topology=ClusterTopology(clusters=[ClusterSpec(name="solo")]),
        )
        mapping = arch.mapper.map_step1(arch.dec, 1.0)
        with pytest.raises(ValueError, match="surviving"):
            apply_cluster_outage(arch, "solo", mapping)
        arch.close()

    def test_session_continues_after_failure(self, arch118f):
        """A frame processes successfully on the degraded topology."""
        from repro.core import DseSession

        mapping = arch118f.mapper.map_step1(arch118f.dec, 1.0)
        apply_cluster_outage(arch118f, "chinook", mapping)
        net = arch118f.net
        pf = run_ac_power_flow(net)
        rng = np.random.default_rng(1)
        plac = full_placement(net).merged_with(dse_pmu_placement(arch118f.dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        session = DseSession(arch118f)
        rep = session.process_frame(ms, truth=(pf.Vm, pf.Va))
        assert rep.timings.total > 0
        assert set(rep.mapping_step1) == {"nwiceb", "catamount"}
