"""Tests for graph-weight estimation, noise tracking and the mapper."""

import numpy as np
import pytest

from repro.cluster import pnnl_testbed
from repro.core import (
    ClusterMapper,
    IterationModel,
    NoiseLevelEstimator,
    PAPER_ITERATION_MODEL,
    edge_weight_exchange,
    edge_weight_upper_bound,
    innovation_noise_level,
    step1_graph,
    step2_graph,
    vertex_weights,
)
from repro.dse import decompose, exchange_bus_sets
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements
from repro.partition import load_imbalance


@pytest.fixture(scope="module")
def dec118(net118):
    return decompose(net118, 9, seed=0)


class TestIterationModel:
    def test_paper_constants(self):
        m = PAPER_ITERATION_MODEL
        assert m.g1 == pytest.approx(3.7579)
        assert m.g2 == pytest.approx(5.2464)

    def test_linear_in_noise(self):
        m = PAPER_ITERATION_MODEL
        assert m.iterations(1.0) == pytest.approx(3.7579 + 5.2464)
        assert m.iterations(2.0) - m.iterations(1.0) == pytest.approx(m.g1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PAPER_ITERATION_MODEL.iterations(-0.1)

    def test_fit_recovers_line(self):
        x = np.array([0.5, 1.0, 2.0, 4.0])
        y = 3.0 * x + 2.0
        m = IterationModel().fit(x, y)
        assert m.g1 == pytest.approx(3.0)
        assert m.g2 == pytest.approx(2.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            IterationModel().fit(np.array([1.0]), np.array([5.0]))


class TestWeights:
    def test_vertex_weights_expression4(self, dec118):
        w = vertex_weights(dec118, 1.0)
        ni = PAPER_ITERATION_MODEL.iterations(1.0)
        expect = np.rint(dec118.sizes() * ni).astype(int)
        assert np.array_equal(w, expect)

    def test_vertex_weights_increase_with_noise(self, dec118):
        assert np.all(vertex_weights(dec118, 3.0) >= vertex_weights(dec118, 0.5))

    def test_edge_upper_bound_is_size_sum(self, dec118):
        wmap = edge_weight_upper_bound(dec118)
        sizes = dec118.sizes()
        for (u, v), w in wmap.items():
            assert w == sizes[u] + sizes[v]

    def test_exchange_edge_weights_leq_upper_bound(self, dec118):
        sets = exchange_bus_sets(dec118)
        lo = edge_weight_exchange(dec118, sets)
        hi = edge_weight_upper_bound(dec118)
        for e in lo:
            assert lo[e] <= hi[e]

    def test_step1_graph_uniform_edges(self, dec118):
        g = step1_graph(dec118, 1.0)
        _, w = g.edge_list()
        assert np.all(w == 1)

    def test_step2_graph_carries_comm_weights(self, dec118):
        sets = exchange_bus_sets(dec118)
        g = step2_graph(dec118, 1.0, sets)
        pairs, w = g.edge_list()
        wmap = edge_weight_exchange(dec118, sets)
        for (u, v), x in zip(pairs, w):
            assert x == wmap[(int(u), int(v))]


class TestNoiseEstimation:
    def test_innovation_recovers_level(self, net118, pf118):
        """With the previous state = truth, innovations measure pure noise."""
        plac = full_placement(net118)
        for level in (0.5, 1.0, 3.0):
            rng = np.random.default_rng(1)
            ms = generate_measurements(net118, plac, pf118, noise_level=level, rng=rng)
            est = innovation_noise_level(net118, ms, pf118.Vm, pf118.Va)
            assert est == pytest.approx(level, rel=0.1)

    def test_clip_applied(self, net118, pf118):
        plac = full_placement(net118)
        rng = np.random.default_rng(2)
        ms = generate_measurements(net118, plac, pf118, noise_level=0.0, rng=rng)
        est = innovation_noise_level(net118, ms, pf118.Vm, pf118.Va)
        assert est == 0.05  # clipped at the floor

    def test_tracker_smooths(self, net118, pf118):
        plac = full_placement(net118)
        tracker = NoiseLevelEstimator(net118, window=4, initial=1.0)
        rng = np.random.default_rng(3)
        for _ in range(6):
            ms = generate_measurements(net118, plac, pf118, noise_level=2.0, rng=rng)
            tracker.update(ms, pf118.Vm, pf118.Va)
        assert tracker.level == pytest.approx(2.0, rel=0.15)

    def test_window_validated(self, net118):
        with pytest.raises(ValueError):
            NoiseLevelEstimator(net118, window=0)


class TestClusterMapper:
    def test_step1_mapping_balanced(self, dec118):
        mapper = ClusterMapper(pnnl_testbed(), seed=0)
        mapping = mapper.map_step1(dec118, 1.0)
        # paper: 1.035 — ours should be in the same regime
        assert mapping.imbalance <= 1.15
        # all subsystems assigned
        counts = [len(v) for v in mapping.as_dict().values()]
        assert sum(counts) == 9
        assert all(c >= 1 for c in counts)

    def test_step2_remap_reports_migration(self, dec118):
        mapper = ClusterMapper(pnnl_testbed(), seed=0)
        m1 = mapper.map_step1(dec118, 1.0)
        sets = exchange_bus_sets(dec118)
        m2, moved = mapper.remap_step2(dec118, 1.0, m1, sets)
        assert m2.imbalance <= 1.25  # paper's step-2 value is 1.079
        assert moved >= 0

    def test_cluster_of_roundtrip(self, dec118):
        mapper = ClusterMapper(pnnl_testbed(), seed=0)
        m = mapper.map_step1(dec118, 1.0)
        for s in range(9):
            assert s in m.subsystems_on(m.cluster_of(s)).tolist()

    def test_static_mapping_covers_all(self, dec118):
        mapper = ClusterMapper(pnnl_testbed(), seed=0)
        m = mapper.static_mapping(dec118)
        counts = [len(v) for v in m.as_dict().values()]
        assert sum(counts) == 9

    def test_mapping_beats_static_balance(self, dec118):
        """Table II: the mapping method balances better than the naive
        block assignment (usually strictly, never worse)."""
        mapper = ClusterMapper(pnnl_testbed(), seed=0)
        static = mapper.static_mapping(dec118)
        mapped = mapper.map_step1(dec118, 1.0)
        g = step1_graph(dec118, 1.0)
        imb_static = load_imbalance(g, static.assignment, 3)
        imb_mapped = load_imbalance(g, mapped.assignment, 3)
        assert imb_mapped <= imb_static + 1e-9
