"""Integration tests: the architecture prototype and DSE sessions."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ClusterTopology
from repro.core import ArchitecturePrototype, DseSession
from repro.dse import dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118, synthetic_grid
from repro.measurements import ScadaSystem, full_placement, generate_measurements


@pytest.fixture(scope="module")
def arch118(net118):
    arch = ArchitecturePrototype.assemble(net118, m_subsystems=9, seed=0)
    yield arch
    arch.close()


@pytest.fixture(scope="module")
def frame118(net118, arch118):
    pf = run_ac_power_flow(net118)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(arch118.dec))
    return pf, generate_measurements(net118, plac, pf, rng=rng)


class TestAssemble:
    def test_default_testbed(self, arch118):
        assert arch118.topology.n_clusters == 3
        assert arch118.dec.m == 9

    def test_custom_topology(self, net118):
        topo = ClusterTopology(clusters=[ClusterSpec(name="solo")])
        arch = ArchitecturePrototype.assemble(net118, m_subsystems=4, topology=topo)
        assert arch.mapper.p == 1
        arch.close()

    def test_fabric_lifecycle(self, net118):
        arch = ArchitecturePrototype.assemble(
            net118, m_subsystems=4, with_fabric=True
        )
        assert arch.fabric is not None
        names = set(arch.fabric.clients)
        assert names == {f"se{s}" for s in range(4)}
        arch.close()
        assert arch.fabric is None


class TestSession:
    def test_process_frame_report(self, arch118, frame118):
        pf, ms = frame118
        session = DseSession(arch118)
        rep = session.process_frame(ms, truth=(pf.Vm, pf.Va))
        assert rep.noise_level > 0
        assert rep.expected_iterations > rep.noise_level  # g2 offset
        assert rep.rounds >= 1
        assert rep.bytes_exchanged > 0
        assert rep.vm_rmse_vs_truth < 5e-3

    def test_mappings_cover_all_subsystems(self, arch118, frame118):
        _, ms = frame118
        session = DseSession(arch118)
        rep = session.process_frame(ms)
        for mapping in (rep.mapping_step1, rep.mapping_step2):
            all_subs = sorted(s for subs in mapping.values() for s in subs)
            assert all_subs == list(range(9))

    def test_timings_structure(self, arch118, frame118):
        _, ms = frame118
        session = DseSession(arch118)
        rep = session.process_frame(ms)
        tm = rep.timings
        assert tm.step1 > 0
        assert len(tm.exchange_per_round) == rep.rounds
        assert len(tm.step2_per_round) == rep.rounds
        assert tm.total == pytest.approx(
            tm.step1 + tm.redistribution + tm.exchange + tm.step2
        )

    def test_distribution_parallelises_step1(self, arch118, frame118, net118):
        """The architecture's point: the distributed Step-1 makespan is
        well below serialising the same subsystem solves on one core."""
        from repro.dse import DistributedStateEstimator

        _, ms = frame118
        session = DseSession(arch118)
        rep = session.process_frame(ms)
        dse = DistributedStateEstimator(arch118.dec, ms)
        serial = sum(
            r.step1_time for r in dse.run(rounds=1).records.values()
        )
        assert rep.timings.step1 < serial

    def test_multi_frame_session_tracks_noise(self, arch118, net118, frame118):
        pf, _ = frame118
        rng = np.random.default_rng(1)
        plac = full_placement(net118).merged_with(dse_pmu_placement(arch118.dec))
        session = DseSession(arch118)
        levels = []
        for _ in range(3):
            ms = generate_measurements(net118, plac, pf, noise_level=1.0, rng=rng)
            rep = session.process_frame(ms)
            levels.append(rep.noise_level)
        # after the cold start the innovation tracker heads toward 1.0
        assert levels[-1] < levels[0] + 1e-9
        assert len(session.reports) == 3

    def test_fabric_frames_actually_relayed(self, net118):
        pf = run_ac_power_flow(net118)
        with ArchitecturePrototype.assemble(
            net118, m_subsystems=4, seed=0, with_fabric=True
        ) as arch:
            rng = np.random.default_rng(2)
            plac = full_placement(net118).merged_with(dse_pmu_placement(arch.dec))
            ms = generate_measurements(net118, plac, pf, rng=rng)
            session = DseSession(arch)
            session.process_frame(ms)
            stats = arch.fabric.relay_stats()
            relayed = sum(frames for frames, _ in stats.values())
            # every subsystem published to every neighbour
            expect = sum(len(arch.dec.neighbors(s)) for s in range(4))
            assert relayed == expect

    def test_centralized_sim_time(self, arch118, frame118):
        _, ms = frame118
        session = DseSession(arch118)
        t = session.centralized_sim_time(0.5)
        assert t == pytest.approx(0.5)

    def test_session_on_scada_stream(self):
        """End-to-end: SCADA frames through the architecture."""
        net = synthetic_grid(n_areas=4, buses_per_area=10, seed=5)
        with ArchitecturePrototype.assemble(net, m_subsystems=4, seed=0) as arch:
            plac = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
            scada = ScadaSystem(net, plac, seed=0)
            session = DseSession(arch)
            for frame in scada.frames(2):
                rep = session.process_frame(frame.mset, t=frame.t)
                assert rep.timings.total > 0
