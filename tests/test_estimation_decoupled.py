"""Tests for fast-decoupled state estimation."""

import numpy as np
import pytest

from repro.estimation import (
    EstimationError,
    estimate_state,
    fast_decoupled_estimate,
)
from repro.measurements import (
    MeasType,
    Measurement,
    MeasurementSet,
    full_placement,
    generate_measurements,
    pmu_placement,
)


class TestFastDecoupled:
    def test_matches_full_newton(self, net118, pf118):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        full = estimate_state(net118, ms)
        fd = fast_decoupled_estimate(net118, ms)
        assert fd.converged
        dva = fd.Va - full.Va
        dva -= dva.mean()
        assert np.abs(fd.Vm - full.Vm).max() < 5e-4
        assert np.abs(dva).max() < 5e-4

    def test_zero_noise_recovery(self, net14, pf14):
        rng = np.random.default_rng(1)
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        fd = fast_decoupled_estimate(net14, ms, tol=1e-10)
        assert np.allclose(fd.Vm, pf14.Vm, atol=1e-7)
        assert np.allclose(fd.Va, pf14.Va, atol=1e-7)

    def test_faster_per_iteration_than_newton(self, net118, pf118):
        """The decoupled halves factorise once: more (cheaper) iterations."""
        rng = np.random.default_rng(2)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        full = estimate_state(net118, ms)
        fd = fast_decoupled_estimate(net118, ms)
        assert fd.iterations >= full.iterations  # linear vs quadratic rate

    def test_rejects_current_magnitudes(self, net14, pf14):
        plac = pmu_placement(net14)  # contains I_MAG_F channels
        rng = np.random.default_rng(3)
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        with pytest.raises(EstimationError, match="current"):
            fast_decoupled_estimate(net14, ms)

    def test_needs_both_halves(self, net14):
        p_only = MeasurementSet(
            [Measurement(MeasType.P_INJ, b, 0.0, 0.01) for b in range(14)]
        )
        with pytest.raises(EstimationError, match="active and reactive"):
            fast_decoupled_estimate(net14, p_only)

    def test_underdetermined(self, net14):
        tiny = MeasurementSet(
            [
                Measurement(MeasType.P_INJ, 0, 0.0, 0.01),
                Measurement(MeasType.Q_INJ, 0, 0.0, 0.01),
            ]
        )
        with pytest.raises(EstimationError, match="underdetermined"):
            fast_decoupled_estimate(net14, tiny)

    def test_pmu_anchored_absolute_angles(self, net14, pf14):
        from repro.measurements import DEFAULT_SIGMAS

        plac = full_placement(net14)
        anchors = MeasurementSet(
            [Measurement(MeasType.PMU_VA, b, 0.0, DEFAULT_SIGMAS[MeasType.PMU_VA])
             for b in range(3)]
        )
        rng = np.random.default_rng(4)
        ms = generate_measurements(
            net14, plac.merged_with(anchors), pf14, noise_level=0.0, rng=rng
        )
        fd = fast_decoupled_estimate(net14, ms, tol=1e-10)
        # absolute angle recovered (no reference shift)
        assert np.abs(fd.Va - pf14.Va).max() < 1e-6
