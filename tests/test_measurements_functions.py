"""Tests for measurement functions h(x) and Jacobians."""

import numpy as np
import pytest

from repro.grid import run_ac_power_flow
from repro.measurements import (
    Measurement,
    MeasType,
    MeasurementModel,
    MeasurementSet,
    full_placement,
    pmu_placement,
    true_values,
)


def finite_diff_jacobian(model, Vm, Va, eps=1e-7):
    n = len(Vm)
    h0 = model.h(Vm, Va)
    J = np.zeros((len(h0), 2 * n))
    for j in range(2 * n):
        vm, va = Vm.copy(), Va.copy()
        if j < n:
            va[j] += eps
        else:
            vm[j - n] += eps
        J[:, j] = (model.h(vm, va) - h0) / eps
    return J


class TestH:
    def test_h_matches_power_flow(self, net14, pf14):
        """At the solved point, h reproduces the PF injections and flows."""
        plac = full_placement(net14)
        vals = true_values(net14, plac, pf14)
        ms = plac.with_values(vals)
        # Injections
        rows = ms.rows(MeasType.P_INJ)
        assert np.allclose(ms.z[rows], pf14.P, atol=1e-12)
        rows = ms.rows(MeasType.Q_INJ)
        assert np.allclose(ms.z[rows], pf14.Q, atol=1e-12)
        # Flows
        els = ms.elements(MeasType.P_FLOW_F)
        assert np.allclose(ms.z[ms.rows(MeasType.P_FLOW_F)], pf14.Pf[els], atol=1e-12)
        els = ms.elements(MeasType.Q_FLOW_T)
        assert np.allclose(ms.z[ms.rows(MeasType.Q_FLOW_T)], pf14.Qt[els], atol=1e-12)

    def test_vmag_and_angle_passthrough(self, net14, pf14):
        ms = MeasurementSet(
            [
                Measurement(MeasType.V_MAG, 3, 0.0, 0.01),
                Measurement(MeasType.PMU_VA, 7, 0.0, 0.01),
            ]
        )
        model = MeasurementModel(net14, ms)
        h = model.h(pf14.Vm, pf14.Va)
        assert h[0] == pf14.Vm[3]
        assert h[1] == pf14.Va[7]

    def test_current_magnitude(self, net14, pf14):
        ms = MeasurementSet([Measurement(MeasType.I_MAG_F, 0, 0.0, 0.01)])
        model = MeasurementModel(net14, ms)
        h = model.h(pf14.Vm, pf14.Va)
        s = np.hypot(pf14.Pf[0], pf14.Qf[0])
        assert h[0] == pytest.approx(s / pf14.Vm[net14.f[0]], rel=1e-9)

    def test_bad_element_rejected(self, net14):
        ms = MeasurementSet([Measurement(MeasType.V_MAG, 99, 0.0, 0.01)])
        with pytest.raises(ValueError, match="references element"):
            MeasurementModel(net14, ms)

    def test_residual_zero_at_truth(self, net14, pf14):
        plac = full_placement(net14)
        vals = true_values(net14, plac, pf14)
        ms = plac.with_values(vals)
        model = MeasurementModel(net14, ms)
        assert np.allclose(model.residual(ms.z, pf14.Vm, pf14.Va), 0, atol=1e-12)


class TestJacobian:
    @pytest.mark.parametrize("placement_fn", [full_placement, pmu_placement])
    def test_matches_finite_difference(self, net14, pf14, placement_fn):
        plac = placement_fn(net14)
        model = MeasurementModel(net14, plac)
        H = model.jacobian(pf14.Vm, pf14.Va).toarray()
        Hfd = finite_diff_jacobian(model, pf14.Vm, pf14.Va)
        # forward differences: truncation error ~ eps * |h''|; current
        # magnitude rows have O(1) values so allow a looser bound there
        assert np.abs(H - Hfd).max() < 2e-4

    def test_matches_fd_off_solution(self, net14, rng):
        """Jacobian is exact at arbitrary (feasible) states, not just x*."""
        plac = full_placement(net14)
        model = MeasurementModel(net14, plac)
        Vm = 1.0 + 0.05 * rng.standard_normal(14)
        Va = 0.2 * rng.standard_normal(14)
        H = model.jacobian(Vm, Va).toarray()
        Hfd = finite_diff_jacobian(model, Vm, Va)
        assert np.abs(H - Hfd).max() < 1e-5

    def test_shape_and_sparsity(self, net118, pf118):
        plac = full_placement(net118)
        model = MeasurementModel(net118, plac)
        H = model.jacobian(pf118.Vm, pf118.Va)
        assert H.shape == (len(plac), 2 * 118)
        # Each row touches only the local neighbourhood: way below 10% fill.
        assert H.nnz < 0.1 * H.shape[0] * H.shape[1]

    def test_vmag_rows_are_unit_vectors(self, net14, pf14):
        plac = full_placement(net14)
        model = MeasurementModel(net14, plac)
        H = model.jacobian(pf14.Vm, pf14.Va).toarray()
        rows = plac.rows(MeasType.V_MAG)
        els = plac.elements(MeasType.V_MAG)
        for r, e in zip(rows, els):
            expect = np.zeros(2 * 14)
            expect[14 + e] = 1.0
            assert np.array_equal(H[r], expect)

    def test_empty_set_jacobian(self, net14, pf14):
        model = MeasurementModel(net14, MeasurementSet([]))
        H = model.jacobian(pf14.Vm, pf14.Va)
        assert H.shape == (0, 28)
