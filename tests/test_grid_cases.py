"""Validation of bundled cases and the synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import is_single_island, run_ac_power_flow
from repro.grid.cases import (
    SyntheticGridSpec,
    case4,
    case14,
    case118,
    synthetic_grid,
)


class TestBundledCases:
    def test_case4_dimensions(self, net4):
        assert (net4.n_bus, net4.n_branch, net4.n_gen) == (4, 5, 2)

    def test_case14_dimensions(self, net14):
        assert (net14.n_bus, net14.n_branch, net14.n_gen) == (14, 20, 5)

    def test_case118_dimensions(self, net118):
        assert (net118.n_bus, net118.n_branch, net118.n_gen) == (118, 186, 54)

    @pytest.mark.parametrize("factory", [case4, case14, case118])
    def test_single_island(self, factory):
        assert is_single_island(factory())

    @pytest.mark.parametrize("factory", [case4, case14, case118])
    def test_flat_start_power_flow_converges(self, factory):
        r = run_ac_power_flow(factory(), flat_start=True)
        assert r.converged
        assert 0.90 <= r.Vm.min() and r.Vm.max() <= 1.10

    def test_case118_load_totals(self, net118):
        # Total system load of the IEEE 118 system is 4242 MW.
        assert net118.Pd.sum() * net118.base_mva == pytest.approx(4242, abs=1.0)

    def test_case118_slack_is_bus_69(self, net118):
        assert net118.bus_ids[net118.slack_buses[0]] == 69

    def test_case118_stored_profile_near_solution(self, net118, pf118):
        # The stored Vm/Va profile is the published solved case; our solver
        # should land close to it (tolerance covers the 3-decimal rounding
        # of the published profile).
        assert np.allclose(pf118.Vm, net118.Vm0, atol=2e-2)
        assert np.allclose(np.rad2deg(pf118.Va - net118.Va0), 0, atol=1.0)

    def test_case14_stored_profile_near_solution(self, net14, pf14):
        assert np.allclose(pf14.Vm, net14.Vm0, atol=5e-3)


class TestSyntheticGrid:
    def test_deterministic_per_seed(self):
        a = synthetic_grid(seed=5)
        b = synthetic_grid(seed=5)
        assert np.array_equal(a.f, b.f)
        assert np.allclose(a.x, b.x)
        assert np.allclose(a.Pd, b.Pd)

    def test_different_seeds_differ(self):
        a = synthetic_grid(seed=5)
        b = synthetic_grid(seed=6)
        assert not (np.array_equal(a.f, b.f) and np.allclose(a.Pd, b.Pd))

    def test_bus_count(self):
        net = synthetic_grid(n_areas=4, buses_per_area=10, seed=0)
        assert net.n_bus == 40

    def test_areas_labelled(self):
        net = synthetic_grid(n_areas=4, buses_per_area=10, seed=0)
        assert set(net.area.tolist()) == {1, 2, 3, 4}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticGridSpec(n_areas=0)
        with pytest.raises(ValueError):
            SyntheticGridSpec(buses_per_area=1)

    def test_spec_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            synthetic_grid(SyntheticGridSpec(), seed=1)

    @settings(max_examples=15, deadline=None)
    @given(
        n_areas=st.integers(min_value=1, max_value=8),
        buses=st.integers(min_value=4, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_always_connected_and_solvable(self, n_areas, buses, seed):
        """Property: every generated grid is one island and solves AC PF."""
        net = synthetic_grid(n_areas=n_areas, buses_per_area=buses, seed=seed)
        assert is_single_island(net)
        r = run_ac_power_flow(net, flat_start=True, max_iter=40)
        assert r.converged
