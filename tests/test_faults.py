"""Unit tests for repro.faults and the resilience primitives it exercises.

Covers the plan/injector determinism contract, the retry policy, the
shutdown-aware data buffer, the typed error hierarchy, the transport
fault hook, retry-driven sends through ``MWClient``, serving load
shedding, and the simulated-cluster link failures.
"""

import threading
import time

import pytest

from repro import faults
from repro.cluster import ClusterSpec, ClusterTopology, LinkSpec, SimComm, SimEngine
from repro.cluster.simmpi import SimLinkDown
from repro.faults import Decision, FaultInjector, FaultPlan, FaultRule, NO_FAULT
from repro.middleware.client import DataBuffer, EndpointRegistry, MWClient
from repro.middleware.errors import (
    DEFAULT_RETRY,
    ClientClosed,
    ConnectFailed,
    DeadlineExceeded,
    MiddlewareError,
    RecvTimeout,
    RetryPolicy,
    SendFailed,
)
from repro.middleware.transports import InprocTransport, _faulted_payloads


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    """Every test starts and ends with no process-wide injector."""
    faults.uninstall()
    yield
    faults.uninstall()


# ---------------------------------------------------------------------------
# plans and rules
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_add_builds_immutable_plans(self):
        p0 = FaultPlan(seed=3)
        p1 = p0.add("mux.forward", "drop", key=(1, 2), probability=0.5)
        assert len(p0) == 0 and len(p1) == 1
        assert p1.rules[0].match == {"key": (1, 2)}
        assert p1.layers == frozenset({"mux.forward"})

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown fault layer"):
            FaultRule(layer="nope", action="drop")

    def test_action_layer_mismatch_rejected(self):
        with pytest.raises(ValueError, match="not valid for layer"):
            FaultRule(layer="transport.send", action="kill")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"delay": -1.0},
            {"after": -1},
            {"count": 0},
        ],
    )
    def test_bad_windows_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(layer="mux.forward", action="drop", **kwargs)

    def test_wildcard_tuple_match(self):
        rule = FaultRule(
            layer="mux.forward", action="drop", match={"key": (1, None)}
        )
        assert rule.matches((1, 2)) and rule.matches((1, 9))
        assert not rule.matches((2, 2))
        assert not rule.matches((1, 2, 3))  # arity mismatch

    def test_empty_match_matches_everything(self):
        rule = FaultRule(layer="transport.send", action="drop")
        assert rule.matches("tcp://a:1") and rule.matches(("x", "y"))

    def test_random_plan_is_seed_determined(self):
        a = FaultPlan.random(1234, n_rules=5)
        b = FaultPlan.random(1234, n_rules=5)
        assert a == b
        assert a != FaultPlan.random(1235, n_rules=5)
        assert all(r.layer in ("transport.send", "mux.forward") for r in a.rules)


# ---------------------------------------------------------------------------
# injector determinism
# ---------------------------------------------------------------------------
def _drive(inj, keys, events_per_key):
    """Replay a fixed synthetic workload against an injector."""
    out = []
    for key in keys:
        for _ in range(events_per_key):
            out.append(inj.decide("mux.forward", key).action)
    return out


class TestInjectorDeterminism:
    PLAN = (
        FaultPlan(seed=42)
        .add("mux.forward", "drop", probability=0.3)
        .add("mux.forward", "delay", probability=0.2, delay=0.0)
    )
    KEYS = [(s, d) for s in range(3) for d in range(3) if s != d]

    def test_same_seed_same_decisions(self):
        a = _drive(FaultInjector(self.PLAN), self.KEYS, 20)
        b = _drive(FaultInjector(self.PLAN), self.KEYS, 20)
        assert a == b
        assert any(x == "drop" for x in a)  # the plan actually fires

    def test_reset_replays_exactly(self):
        inj = FaultInjector(self.PLAN)
        _drive(inj, self.KEYS, 20)
        first = inj.fired_summary()
        inj.reset()
        assert inj.fired_summary() == {}
        _drive(inj, self.KEYS, 20)
        assert inj.fired_summary() == first

    def test_interleaving_across_keys_is_irrelevant(self):
        """Decisions depend only on each key's own event sequence."""
        seq = _drive(FaultInjector(self.PLAN), self.KEYS, 10)
        by_key = {
            k: [seq[i * 10 + j] for j in range(10)]
            for i, k in enumerate(self.KEYS)
        }
        # replay with reversed key order: per-key streams are unchanged
        inj = FaultInjector(self.PLAN)
        rev = _drive(inj, list(reversed(self.KEYS)), 10)
        by_key_rev = {
            k: [rev[i * 10 + j] for j in range(10)]
            for i, k in enumerate(reversed(self.KEYS))
        }
        assert by_key == by_key_rev

    def test_count_limits_fires_per_key(self):
        plan = FaultPlan(seed=0).add("worker", "kill", key=2, count=1)
        inj = FaultInjector(plan)
        decisions = [inj.decide("worker", i) for i in range(5)]
        assert decisions[2].action == "kill"
        assert all(not d for i, d in enumerate(decisions) if i != 2)
        # the same key again: the count budget is spent
        assert not inj.decide("worker", 2)

    def test_after_skips_leading_events(self):
        plan = FaultPlan(seed=0).add("transport.send", "drop", after=2)
        inj = FaultInjector(plan)
        got = [bool(inj.decide("transport.send", "u")) for _ in range(4)]
        assert got == [False, False, True, True]

    def test_no_rules_for_layer_is_no_fault(self):
        inj = FaultInjector(FaultPlan(seed=0).add("worker", "kill"))
        assert inj.decide("transport.send", "u") is NO_FAULT

    def test_total_fired_filters_by_layer(self):
        plan = FaultPlan(seed=0).add("worker", "kill").add("mux.forward", "drop")
        inj = FaultInjector(plan)
        inj.decide("worker", 0)
        inj.decide("mux.forward", (0, 1))
        assert inj.total_fired() == 2
        assert inj.total_fired("worker") == 1

    def test_injection_context_installs_and_restores(self):
        assert faults.active() is None
        with faults.injection(FaultPlan(seed=1)) as inj:
            assert faults.active() is inj
            with faults.injection(FaultPlan(seed=2)) as inner:
                assert faults.active() is inner
            assert faults.active() is inj
        assert faults.active() is None

    def test_decision_truthiness(self):
        assert not NO_FAULT
        assert Decision(action="drop")


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_exponential_and_capped(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.04, jitter=0.0)
        assert p.backoff(1) == pytest.approx(0.01)
        assert p.backoff(2) == pytest.approx(0.02)
        assert p.backoff(3) == pytest.approx(0.04)
        assert p.backoff(4) == pytest.approx(0.04)  # capped

    def test_jitter_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay=0.01, jitter=0.5, seed=7)
        q = RetryPolicy(base_delay=0.01, jitter=0.5, seed=7)
        for k in range(1, 4):
            raw = min(p.max_delay, p.base_delay * 2 ** (k - 1))
            assert p.backoff(k) == q.backoff(k)
            assert raw * 0.5 <= p.backoff(k) <= raw

    def test_sleep_raises_past_deadline(self):
        p = RetryPolicy(base_delay=0.05, jitter=0.0)
        with pytest.raises(DeadlineExceeded):
            p.sleep(1, deadline=time.monotonic() + 0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


# ---------------------------------------------------------------------------
# typed error hierarchy
# ---------------------------------------------------------------------------
class TestErrorHierarchy:
    def test_legacy_compatibility(self):
        # every typed error still satisfies the pre-hierarchy except clauses
        assert issubclass(MiddlewareError, RuntimeError)
        assert issubclass(ConnectFailed, ConnectionRefusedError)
        assert issubclass(RecvTimeout, TimeoutError)
        assert issubclass(DeadlineExceeded, TimeoutError)
        for cls in (ConnectFailed, SendFailed, RecvTimeout, ClientClosed,
                    DeadlineExceeded):
            assert issubclass(cls, MiddlewareError)

    def test_recv_timeout_is_not_client_closed(self):
        assert not issubclass(RecvTimeout, ClientClosed)
        assert not issubclass(ClientClosed, TimeoutError)


# ---------------------------------------------------------------------------
# data buffer shutdown semantics
# ---------------------------------------------------------------------------
class TestDataBufferClose:
    def test_empty_get_times_out_typed(self):
        buf = DataBuffer()
        with pytest.raises(RecvTimeout):
            buf.get(timeout=0.01)

    def test_close_wakes_blocked_reader(self):
        buf = DataBuffer()
        caught = []

        def reader():
            try:
                buf.get(timeout=30.0)
            except ClientClosed as exc:
                caught.append(exc)

        th = threading.Thread(target=reader, daemon=True)
        th.start()
        time.sleep(0.05)
        t0 = time.monotonic()
        buf.close()
        th.join(timeout=5.0)
        assert not th.is_alive()
        assert time.monotonic() - t0 < 5.0  # woke well before the 30s timeout
        assert len(caught) == 1

    def test_close_latches_for_multiple_readers(self):
        buf = DataBuffer()
        buf.close()
        for _ in range(3):
            with pytest.raises(ClientClosed):
                buf.get(timeout=0.5)
        assert buf.closed

    def test_pending_payloads_drain_before_close_raises(self):
        buf = DataBuffer()
        buf.put(b"a")
        buf.put(b"b")
        buf.close()
        assert buf.get(timeout=1.0) == b"a"
        assert buf.get(timeout=1.0) == b"b"
        with pytest.raises(ClientClosed):
            buf.get(timeout=1.0)

    def test_client_close_wakes_recv(self):
        client = MWClient("x", EndpointRegistry(), inproc=InprocTransport())
        client.serve("inproc://fault-close-x")
        done = []

        def blocked():
            with pytest.raises(ClientClosed):
                client.recv(timeout=30.0)
            done.append(True)

        th = threading.Thread(target=blocked, daemon=True)
        th.start()
        time.sleep(0.05)
        client.close()
        th.join(timeout=5.0)
        assert done == [True]


# ---------------------------------------------------------------------------
# transport fault hook
# ---------------------------------------------------------------------------
class TestFaultedPayloads:
    def test_no_injector_passthrough(self):
        assert _faulted_payloads("u", b"abc") == (b"abc",)

    def test_keyless_connections_never_faulted(self):
        with faults.injection(FaultPlan(seed=0).add("transport.send", "drop")):
            assert _faulted_payloads(None, b"abc") == (b"abc",)

    def test_actions(self):
        plan = (
            FaultPlan(seed=0)
            .add("transport.send", "drop", key="u-drop")
            .add("transport.send", "duplicate", key="u-dup")
            .add("transport.send", "corrupt", key="u-corrupt")
            .add("transport.send", "disconnect", key="u-dc")
        )
        with faults.injection(plan):
            assert _faulted_payloads("u-drop", b"abcdef") == ()
            assert _faulted_payloads("u-dup", b"ab") == (b"ab", b"ab")
            assert _faulted_payloads("u-corrupt", b"abcdef") == (b"abc",)
            with pytest.raises(ConnectionResetError):
                _faulted_payloads("u-dc", b"abcdef")
            # unmatched keys proceed untouched
            assert _faulted_payloads("other", b"xy") == (b"xy",)


# ---------------------------------------------------------------------------
# client dial faults and retries
# ---------------------------------------------------------------------------
class TestClientRetries:
    def _pair(self, suffix, **kwargs):
        t = InprocTransport()
        registry = EndpointRegistry()
        sender = MWClient("snd", registry, inproc=t, **kwargs)
        receiver = MWClient("rcv", registry, inproc=t)
        receiver.serve(f"inproc://fault-rcv-{suffix}")
        return sender, receiver

    def test_dial_fault_exhausts_budget_as_connect_failed(self):
        sender, receiver = self._pair(
            "a", retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        )
        try:
            plan = FaultPlan(seed=0).add("client.dial", "fail")
            with faults.injection(plan) as inj:
                with pytest.raises(ConnectFailed):
                    sender.send("rcv", b"x")
                assert inj.total_fired("client.dial") == 2
            assert sender.retries == 1
        finally:
            sender.close()
            receiver.close()

    def test_transient_dial_fault_retried_transparently(self):
        sender, receiver = self._pair(
            "b", retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        )
        try:
            plan = FaultPlan(seed=0).add("client.dial", "fail", count=1)
            with faults.injection(plan):
                sender.send("rcv", b"payload")
            assert receiver.recv(timeout=2.0) == b"payload"
            assert sender.retries == 1
        finally:
            sender.close()
            receiver.close()

    def test_retry_none_fails_on_first_error(self):
        sender, receiver = self._pair("c", retry=None)
        try:
            plan = FaultPlan(seed=0).add("client.dial", "fail", count=1)
            with faults.injection(plan):
                with pytest.raises(ConnectFailed):
                    sender.send("rcv", b"x")
            assert sender.retries == 0
        finally:
            sender.close()
            receiver.close()

    def test_disconnect_fault_retried_to_success(self):
        sender, receiver = self._pair(
            "d", retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        )
        try:
            url = sender.registry.resolve("rcv")
            plan = FaultPlan(seed=0).add(
                "transport.send", "disconnect", key=url, count=1
            )
            with faults.injection(plan):
                sender.send("rcv", b"recovered")
            assert receiver.recv(timeout=2.0) == b"recovered"
            assert sender.retries == 1
        finally:
            sender.close()
            receiver.close()

    def test_send_deadline_bounds_retry_storm(self):
        sender, receiver = self._pair(
            "e",
            retry=RetryPolicy(max_attempts=50, base_delay=0.05, jitter=0.0),
            send_deadline=0.05,
        )
        try:
            plan = FaultPlan(seed=0).add("client.dial", "fail")
            with faults.injection(plan):
                t0 = time.monotonic()
                with pytest.raises(SendFailed):
                    sender.send("rcv", b"x")
                assert time.monotonic() - t0 < 2.0
        finally:
            sender.close()
            receiver.close()


# ---------------------------------------------------------------------------
# simulated cluster links
# ---------------------------------------------------------------------------
def _two_rank_comm():
    eng = SimEngine()
    topo = ClusterTopology(
        clusters=[ClusterSpec(name="a"), ClusterSpec(name="b")],
        default_link=LinkSpec(latency=1e-4, bandwidth=1e8),
    )
    return eng, SimComm(eng, topo, ["a", "b"])


class TestSimLinkFaults:
    def _run_send(self, comm, eng):
        errors = []

        def sender():
            try:
                yield from comm.send(1, "m", nbytes=100.0, src=0)
            except SimLinkDown as exc:
                errors.append(exc)

        eng.process(sender())
        eng.run()
        return errors

    def test_failed_link_raises(self):
        eng, comm = _two_rank_comm()
        comm.fail_link("a", "b")
        assert len(self._run_send(comm, eng)) == 1

    def test_restore_link_recovers(self):
        eng, comm = _two_rank_comm()
        comm.fail_link("a", "b")
        comm.restore_link("b", "a")  # symmetric
        assert self._run_send(comm, eng) == []
        assert comm.stats_messages == 1

    def test_loopback_cannot_fail(self):
        _, comm = _two_rank_comm()
        with pytest.raises(ValueError):
            comm.fail_link("a", "a")

    def test_unknown_cluster_rejected(self):
        _, comm = _two_rank_comm()
        with pytest.raises(KeyError):
            comm.fail_link("a", "zz")

    def test_injected_link_fail(self):
        eng, comm = _two_rank_comm()
        plan = FaultPlan(seed=0).add("simmpi.link", "fail", key=("a", "b"))
        with faults.injection(plan):
            assert len(self._run_send(comm, eng)) == 1

    def test_injected_drop_counts_messages(self):
        eng, comm = _two_rank_comm()
        plan = FaultPlan(seed=0).add("simmpi.link", "drop")
        with faults.injection(plan):
            assert self._run_send(comm, eng) == []
        assert comm.dropped_messages == 1
        assert comm.stats_messages == 0


# ---------------------------------------------------------------------------
# serving load shedding
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dse14_faults(net14, pf14):
    import numpy as np

    from repro.dse import decompose, dse_pmu_placement
    from repro.measurements import full_placement, generate_measurements

    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(3)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    return dec, ms


class TestServingShedding:
    def test_validation(self, dse14_faults):
        from repro.serving import ScenarioService

        dec, ms = dse14_faults
        with pytest.raises(ValueError, match="request_timeout"):
            ScenarioService(dec, ms, request_timeout=0.0)
        with pytest.raises(ValueError, match="max_queue"):
            ScenarioService(dec, ms, max_queue=0)

    def test_deadline_sheds_stale_requests(self, dse14_faults):
        from repro.serving import ScenarioService

        dec, ms = dse14_faults
        with ScenarioService(
            dec, ms, max_batch=4, flush_latency=0.0, request_timeout=0.25
        ) as svc:
            # hold the dispatcher inside its first batch while the request
            # in it goes stale; later batches pass straight through
            svc._ensure_dispatcher()
            blocked = threading.Event()
            release = threading.Event()

            def _block(batch, _orig=svc._execute_batch):
                blocked.set()
                release.wait(timeout=10.0)
                _orig(batch)

            svc._execute_batch = _block
            stale = svc.submit_estimation()
            assert blocked.wait(timeout=5.0)
            time.sleep(0.4)  # well past the 0.25s deadline
            release.set()
            with pytest.raises(DeadlineExceeded):
                stale.result(timeout=60)
            # the dispatcher is live again: a fresh request is served
            fresh = svc.submit_estimation()
            fresh.result(timeout=60)
            assert svc.stats.n_shed == 1
            assert svc.stats.n_requests == 1

    def test_max_queue_sheds_at_admission(self, dse14_faults):
        from repro.serving import ScenarioService
        from repro.serving.requests import ServiceOverloaded

        dec, ms = dse14_faults
        with ScenarioService(dec, ms, max_batch=1, max_queue=1) as svc:
            svc._ensure_dispatcher()
            blocked = threading.Event()
            release = threading.Event()

            def _block(batch, _orig=svc._execute_batch):
                blocked.set()
                release.wait(timeout=10.0)
                _orig(batch)

            svc._execute_batch = _block
            first = svc.submit_estimation()
            assert blocked.wait(timeout=5.0)
            queued = svc.submit_estimation()  # backlog now at max_queue
            shed = svc.submit_estimation()
            with pytest.raises(ServiceOverloaded):
                shed.result(timeout=5.0)
            release.set()
            first.result(timeout=60)
            queued.result(timeout=60)
            assert svc.stats.n_shed == 1
            assert svc.stats.n_requests == 2  # shed requests never count served
