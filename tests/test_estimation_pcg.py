"""Tests for the from-scratch PCG solver and preconditioners."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import (
    BlockJacobiPreconditioner,
    IChol0Preconditioner,
    ichol0,
    jacobi_preconditioner,
    pcg_solve,
)


def random_spd(n, rng, density=0.3):
    """Random sparse SPD matrix via AᵀA + shift."""
    A = sp.random(n, n, density=density, random_state=np.random.RandomState(int(rng.integers(2**31))))
    return (A.T @ A + 0.5 * sp.eye(n)).tocsc()


class TestPcgSolve:
    def test_identity(self):
        A = sp.eye(5, format="csc")
        b = np.arange(5.0)
        res = pcg_solve(A, b)
        assert res.converged
        assert np.allclose(res.x, b)

    def test_matches_direct_solver(self, rng):
        A = random_spd(40, rng)
        b = rng.standard_normal(40)
        res = pcg_solve(A, b, tol=1e-12)
        ref = sp.linalg.spsolve(A, b)
        assert res.converged
        assert np.allclose(res.x, ref, atol=1e-8)

    def test_zero_rhs(self):
        A = sp.eye(3, format="csc")
        res = pcg_solve(A, np.zeros(3))
        assert res.converged
        assert np.allclose(res.x, 0)

    def test_warm_start(self, rng):
        A = random_spd(30, rng)
        b = rng.standard_normal(30)
        exact = sp.linalg.spsolve(A, b)
        res = pcg_solve(A, b, x0=exact, tol=1e-10)
        assert res.iterations <= 2

    def test_max_iter_reported(self, rng):
        A = random_spd(50, rng)
        b = rng.standard_normal(50)
        res = pcg_solve(A, b, max_iter=1, tol=1e-14, preconditioner="none")
        assert not res.converged
        assert res.iterations == 1

    def test_residual_history_monotone_tail(self, rng):
        A = random_spd(30, rng)
        b = rng.standard_normal(30)
        res = pcg_solve(A, b, tol=1e-12)
        assert res.residual_history[-1] < res.residual_history[0]

    def test_indefinite_detected(self):
        A = sp.diags([1.0, -1.0, 1.0]).tocsc()
        res = pcg_solve(A, np.array([1.0, 1.0, 1.0]), preconditioner="none")
        assert not res.converged

    def test_unknown_preconditioner(self):
        A = sp.eye(3, format="csc")
        with pytest.raises(ValueError):
            pcg_solve(A, np.ones(3), preconditioner="bogus")

    def test_callable_preconditioner(self, rng):
        A = random_spd(20, rng)
        b = rng.standard_normal(20)
        res = pcg_solve(A, b, preconditioner=lambda v: v, tol=1e-12)
        assert res.converged

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 30), seed=st.integers(0, 10_000))
    def test_property_solves_spd(self, n, seed):
        """Property: PCG solves any SPD system to tolerance."""
        rng = np.random.default_rng(seed)
        A = random_spd(n, rng)
        b = rng.standard_normal(n)
        res = pcg_solve(A, b, tol=1e-11)
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-9


class TestJacobi:
    def test_apply(self):
        A = sp.diags([4.0, 2.0]).tocsc()
        M = jacobi_preconditioner(A)
        assert np.allclose(M(np.array([4.0, 2.0])), [1.0, 1.0])

    def test_rejects_nonpositive_diagonal(self):
        A = sp.diags([1.0, 0.0]).tocsc()
        with pytest.raises(ValueError):
            jacobi_preconditioner(A)

    def test_speeds_up_illconditioned(self, rng):
        d = np.logspace(0, 6, 60)
        A = sp.diags(d).tocsc()
        b = rng.standard_normal(60)
        plain = pcg_solve(A, b, preconditioner="none", tol=1e-10, max_iter=1000)
        prec = pcg_solve(A, b, preconditioner="jacobi", tol=1e-10, max_iter=1000)
        assert prec.iterations < plain.iterations


class TestIChol0:
    def test_exact_on_tridiagonal(self):
        # IC(0) on a banded matrix with no fill-in is the exact factor.
        A = sp.diags([[-1.0] * 9, [4.0] * 10, [-1.0] * 9], [-1, 0, 1]).tocsc()
        L = ichol0(A)
        assert np.allclose((L @ L.T).toarray(), A.toarray(), atol=1e-12)

    def test_preconditioner_reduces_iterations(self, rng):
        # 2-D Laplacian: the textbook IC(0) win.
        n = 15
        I = sp.eye(n)
        T = sp.diags([[-1.0] * (n - 1), [4.0] * n, [-1.0] * (n - 1)], [-1, 0, 1])
        A = (sp.kron(I, T) + sp.kron(sp.diags([[-1.0] * (n - 1)] * 2, [-1, 1]), I)).tocsc()
        b = rng.standard_normal(n * n)
        plain = pcg_solve(A, b, preconditioner="jacobi", tol=1e-10, max_iter=2000)
        ic = pcg_solve(A, b, preconditioner="ichol", tol=1e-10, max_iter=2000)
        assert ic.converged
        assert ic.iterations < plain.iterations

    def test_breakdown_raises(self):
        # SPD but IC(0)-breaking matrices exist; a non-SPD one certainly breaks.
        A = sp.csc_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ValueError):
            ichol0(A)

    def test_shifted_fallback(self):
        A = sp.csc_matrix(np.array([[1.0, 0.99, 0.99],
                                    [0.99, 1.0, 0.99],
                                    [0.99, 0.99, 1.0]]))
        # SPD (eigs ~ 0.01, 0.01, 2.98) but IC(0) may need a shift; the
        # preconditioner object must construct regardless.
        M = IChol0Preconditioner(A)
        v = np.ones(3)
        assert np.all(np.isfinite(M(v)))


class TestBlockJacobi:
    def test_exact_when_single_block(self, rng):
        A = random_spd(12, rng)
        M = BlockJacobiPreconditioner(A, [np.arange(12)])
        b = rng.standard_normal(12)
        assert np.allclose(M(b), sp.linalg.spsolve(A, b), atol=1e-9)

    def test_partition_validated(self, rng):
        A = random_spd(6, rng)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, [np.array([0, 1])])  # incomplete
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, [np.arange(6), np.array([0])])  # overlap

    def test_block_structure_beats_jacobi(self, rng):
        # Block-diagonal-dominant matrix: block Jacobi nearly exact.
        blocks = [np.arange(0, 10), np.arange(10, 20)]
        A11 = random_spd(10, rng).toarray()
        A22 = random_spd(10, rng).toarray()
        A = np.block([[A11, 0.01 * rng.standard_normal((10, 10))],
                      [0.01 * rng.standard_normal((10, 10)), A22]])
        A = sp.csc_matrix((A + A.T) / 2 + 1e-3 * np.eye(20))
        b = rng.standard_normal(20)
        bj = pcg_solve(A, b, preconditioner=BlockJacobiPreconditioner(A, blocks), tol=1e-10)
        jb = pcg_solve(A, b, preconditioner="jacobi", tol=1e-10)
        assert bj.converged
        assert bj.iterations <= jb.iterations
