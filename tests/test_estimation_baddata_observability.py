"""Tests for bad-data detection and observability analysis."""

import numpy as np
import pytest

from repro.estimation import (
    WlsEstimator,
    chi_square_test,
    dc_estimate,
    estimate_state,
    identify_bad_data,
    is_observable,
    normalized_residuals,
    observable_islands,
    pmu_linear_estimate,
)
from repro.measurements import (
    MeasType,
    Measurement,
    MeasurementSet,
    full_placement,
    generate_measurements,
    inject_bad_data,
    pmu_placement,
    scada_placement,
)


class TestChiSquare:
    def test_clean_data_passes(self, net118, pf118):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        res = estimate_state(net118, ms)
        assert chi_square_test(res)

    def test_gross_error_detected(self, net118, pf118):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        bad = inject_bad_data(ms, np.array([50]), magnitude_sigmas=30, rng=rng)
        res = estimate_state(net118, bad)
        assert not chi_square_test(res)

    def test_zero_dof_always_passes(self, net14, pf14):
        # Build a barely-determined set (m == n_states) -> dof == 0.
        rng = np.random.default_rng(1)
        plac = full_placement(net14)
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        est = WlsEstimator(net14, ms)
        res = est.estimate()
        res.dof = 0
        assert chi_square_test(res)


class TestNormalizedResiduals:
    def test_bad_row_has_largest_nr(self, net118, pf118):
        rng = np.random.default_rng(3)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        bad_row = 123
        bad = inject_bad_data(ms, np.array([bad_row]), magnitude_sigmas=30, rng=rng)
        est = WlsEstimator(net118, bad)
        res = est.estimate()
        rn = normalized_residuals(est, res)
        assert int(np.argmax(rn)) == bad_row

    def test_clean_nrs_mostly_below_3(self, net118, pf118):
        rng = np.random.default_rng(4)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        est = WlsEstimator(net118, ms)
        res = est.estimate()
        rn = normalized_residuals(est, res)
        assert np.mean(rn < 3.0) > 0.99


class TestIdentification:
    def test_removes_injected_rows(self, net118, pf118):
        rng = np.random.default_rng(5)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        rows = np.array([10, 200])
        bad = inject_bad_data(ms, rows, magnitude_sigmas=25, rng=rng)
        report = identify_bad_data(net118, bad)
        assert report.passes_chi_square
        assert set(report.removed_rows) == set(rows.tolist())

    def test_clean_data_removes_nothing(self, net14, pf14):
        rng = np.random.default_rng(6)
        ms = generate_measurements(net14, full_placement(net14), pf14, rng=rng)
        report = identify_bad_data(net14, ms)
        assert report.removed_rows == []
        assert report.passes_chi_square

    def test_estimate_improves_after_removal(self, net118, pf118):
        rng = np.random.default_rng(7)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        bad = inject_bad_data(ms, np.array([77]), magnitude_sigmas=30, rng=rng)
        before = estimate_state(net118, bad).state_error(pf118.Vm, pf118.Va)
        report = identify_bad_data(net118, bad)
        after = report.result.state_error(pf118.Vm, pf118.Va)
        assert after["vm_rmse"] <= before["vm_rmse"]


class TestObservability:
    def test_full_placement_observable(self, net118):
        assert is_observable(net118, full_placement(net118))

    def test_scada_placement_observable(self, net118):
        assert is_observable(net118, scada_placement(net118))

    def test_vmag_only_unobservable(self, net14):
        ms = MeasurementSet(
            [Measurement(MeasType.V_MAG, b, 1.0, 0.01) for b in range(14)]
        )
        assert not is_observable(net14, ms)

    def test_single_island_when_observable(self, net14):
        islands = observable_islands(net14, full_placement(net14))
        assert len(islands) == 1

    def test_islands_split_without_boundary_flows(self, net4):
        # Measure flows only on branch 0 (buses 1-2): buses {0,1} form one
        # island, buses 2 and 3 are separate.
        ms = MeasurementSet(
            [
                Measurement(MeasType.P_FLOW_F, 0, 0.0, 0.01),
                Measurement(MeasType.Q_FLOW_F, 0, 0.0, 0.01),
                Measurement(MeasType.V_MAG, 0, 1.0, 0.01),
            ]
        )
        islands = observable_islands(net4, ms)
        assert sorted(len(i) for i in islands) == [1, 1, 2]

    def test_islands_cover_all_buses(self, net14):
        ms = MeasurementSet(
            [
                Measurement(MeasType.P_FLOW_F, 0, 0.0, 0.01),
                Measurement(MeasType.P_FLOW_F, 5, 0.0, 0.01),
            ]
        )
        islands = observable_islands(net14, ms)
        assert sorted(np.concatenate(islands).tolist()) == list(range(14))


class TestLinearEstimators:
    def test_dc_estimate_close_to_ac_angles(self, net14, pf14):
        rng = np.random.default_rng(8)
        ms = generate_measurements(
            net14, full_placement(net14), pf14, noise_level=0.0, rng=rng
        )
        res = dc_estimate(net14, ms)
        s = net14.slack_buses[0]
        ac_rel = pf14.Va - pf14.Va[s]
        assert np.allclose(res.Va, ac_rel, atol=np.deg2rad(4))

    def test_dc_requires_power_measurements(self, net14):
        ms = MeasurementSet([Measurement(MeasType.V_MAG, 0, 1.0, 0.01)])
        with pytest.raises(Exception):
            dc_estimate(net14, ms)

    def test_pmu_linear_recovers_state(self, net14, pf14):
        sites = np.arange(14)
        plac = pmu_placement(net14, sites)
        rng = np.random.default_rng(9)
        ms = generate_measurements(net14, plac, pf14, noise_level=0.0, rng=rng)
        res = pmu_linear_estimate(net14, ms)
        assert np.allclose(res.Vm, pf14.Vm, atol=1e-12)
        assert np.allclose(res.Va, pf14.Va, atol=1e-12)

    def test_pmu_linear_needs_full_coverage(self, net14, pf14):
        plac = pmu_placement(net14, np.array([0, 1]))
        rng = np.random.default_rng(10)
        ms = generate_measurements(net14, plac, pf14, rng=rng)
        with pytest.raises(Exception, match="every bus"):
            pmu_linear_estimate(net14, ms)
