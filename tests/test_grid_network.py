"""Unit tests for the network data model."""

import numpy as np
import pytest

from repro.grid import BusType, Network, NetworkError
from repro.grid.cases import case4, case4_dict, case14


class TestFromCase:
    def test_basic_shape(self, net4):
        assert net4.n_bus == 4
        assert net4.n_branch == 5
        assert net4.n_gen == 2

    def test_per_unit_conversion(self, net4):
        # case4 bus 3 carries 80 MW / 30 MVAr on a 100 MVA base.
        i = net4.index_of(3)
        assert net4.Pd[i] == pytest.approx(0.8)
        assert net4.Qd[i] == pytest.approx(0.3)

    def test_angles_in_radians(self):
        d = case4_dict()
        d["bus"][1][8] = 90.0  # degrees
        net = Network.from_case(d)
        assert net.Va0[1] == pytest.approx(np.pi / 2)

    def test_zero_tap_becomes_unity(self, net14):
        assert np.all(net14.tap > 0)
        # lines have tap 1.0; the 4-7 transformer has 0.978
        k = np.flatnonzero(
            (net14.bus_ids[net14.f] == 4) & (net14.bus_ids[net14.t] == 7)
        )[0]
        assert net14.tap[k] == pytest.approx(0.978)
        line0 = 0
        assert net14.tap[line0] == pytest.approx(1.0)

    def test_bus_id_mapping_roundtrip(self, net14):
        for bid in net14.bus_ids:
            assert net14.bus_ids[net14.index_of(bid)] == bid

    def test_indices_of_vectorised(self, net14):
        idx = net14.indices_of([1, 5, 14])
        assert list(net14.bus_ids[idx]) == [1, 5, 14]

    def test_unknown_bus_raises(self, net14):
        with pytest.raises(NetworkError):
            net14.index_of(999)


class TestValidation:
    def test_duplicate_bus_numbers(self):
        d = case4_dict()
        d["bus"][1][0] = 1  # same as bus 0
        with pytest.raises(NetworkError, match="duplicate"):
            Network.from_case(d)

    def test_missing_slack(self):
        d = case4_dict()
        d["bus"][0][1] = BusType.PQ
        with pytest.raises(NetworkError, match="slack"):
            Network.from_case(d)

    def test_branch_to_unknown_bus(self):
        d = case4_dict()
        d["branch"][0][0] = 77
        with pytest.raises(NetworkError):
            Network.from_case(d)

    def test_self_loop_rejected(self):
        d = case4_dict()
        d["branch"][0][1] = d["branch"][0][0]
        with pytest.raises(NetworkError, match="self-loop"):
            Network.from_case(d)

    def test_zero_impedance_rejected(self):
        d = case4_dict()
        d["branch"][0][2] = 0.0
        d["branch"][0][3] = 0.0
        with pytest.raises(NetworkError, match="impedance"):
            Network.from_case(d)

    def test_nonpositive_base_mva(self):
        d = case4_dict()
        d["baseMVA"] = 0.0
        with pytest.raises(NetworkError, match="baseMVA"):
            Network.from_case(d)

    def test_short_bus_table_rejected(self):
        d = case4_dict()
        d["bus"] = [row[:5] for row in d["bus"]]
        with pytest.raises(NetworkError, match="columns"):
            Network.from_case(d)


class TestBusSets:
    def test_type_partition_is_complete(self, net14):
        all_buses = np.sort(
            np.concatenate([net14.slack_buses, net14.pv_buses, net14.pq_buses])
        )
        assert np.array_equal(all_buses, np.arange(net14.n_bus))

    def test_case14_has_one_slack_four_pv(self, net14):
        assert len(net14.slack_buses) == 1
        assert len(net14.pv_buses) == 4


class TestInjections:
    def test_injections_sum_gen_minus_load(self, net4):
        P, Q = net4.bus_injections()
        # bus 2 (index 1): 80 MW gen, 30 MW load
        assert P[1] == pytest.approx(0.8 - 0.3)
        # bus 3 (index 2): pure load
        assert P[2] == pytest.approx(-0.8)

    def test_out_of_service_gen_excluded(self):
        d = case4_dict()
        d["gen"][1][7] = 0  # switch off gen at bus 2
        net = Network.from_case(d)
        P, _ = net.bus_injections()
        assert P[1] == pytest.approx(-0.3)


class TestTopologyExports:
    def test_adjacency_pairs_unique_and_sorted(self, net14):
        pairs = net14.adjacency_pairs()
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert len(np.unique(pairs, axis=0)) == len(pairs)

    def test_adjacency_skips_dead_branches(self):
        d = case4_dict()
        d["branch"][4][10] = 0  # 3-4 out of service
        net = Network.from_case(d)
        pairs = net.adjacency_pairs()
        assert [2, 3] not in pairs.tolist()

    def test_to_networkx_nodes_edges(self, net14):
        g = net14.to_networkx()
        assert g.number_of_nodes() == 14
        assert g.number_of_edges() == 20  # case14 has no parallel branches

    def test_parallel_branches_collapse_in_graph(self, net118):
        g = net118.to_networkx()
        # 118 case has parallel circuits (e.g. 42-49 double), so edges < branches
        assert g.number_of_edges() < net118.n_branch
        u, v = net118.index_of(42), net118.index_of(49)
        assert len(g[u][v]["branches"]) == 2


class TestCopy:
    def test_copy_is_deep(self, net4):
        c = net4.copy()
        c.Pd[0] = 99.0
        assert net4.Pd[0] != 99.0

    def test_copy_preserves_mapping(self, net14):
        c = net14.copy()
        assert c.index_of(9) == net14.index_of(9)
