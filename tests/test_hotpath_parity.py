"""Parity tests for the hot-path caches.

The cached fast paths (precomputed Jacobian structure, stateful gain
solver, reused DSE subproblems, warm starts, thread-pool fan-out) are
optimisations only: every one of them must reproduce the uncached
reference computation, bitwise where the schedule is identical and to
well below 1e-10 where only the iteration trajectory changes.
"""

import numpy as np
import pytest

from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.estimation import GainSolver, WlsEstimator, solve_normal_equations
from repro.measurements import (
    MeasurementModel,
    full_placement,
    generate_measurements,
    pmu_placement,
)
from repro.parallel import SerialExecutor, ThreadPoolBackend, make_executor


@pytest.fixture(scope="module")
def ms14(net14, pf14):
    rng = np.random.default_rng(7)
    plac = full_placement(net14).merged_with(pmu_placement(net14))
    return generate_measurements(net14, plac, pf14, rng=rng)


@pytest.fixture(scope="module")
def ms118(net118, pf118):
    rng = np.random.default_rng(7)
    return generate_measurements(net118, full_placement(net118), pf118, rng=rng)


@pytest.fixture(scope="module")
def dse118(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    return dec, ms


class TestJacobianStructureParity:
    """Cached (pattern-reusing) Jacobian vs the from-scratch build."""

    @pytest.mark.parametrize("case", ["net14", "net118"])
    def test_full_jacobian_identical(self, case, request):
        net = request.getfixturevalue(case)
        pf = request.getfixturevalue("pf" + case[3:])
        rng = np.random.default_rng(11)
        plac = full_placement(net).merged_with(pmu_placement(net))
        ms = generate_measurements(net, plac, pf, rng=rng)
        model = MeasurementModel(net, ms)
        keep = np.ones(2 * net.n_bus, dtype=bool)

        for Vm, Va in [
            (np.ones(net.n_bus), np.zeros(net.n_bus)),
            (pf.Vm, pf.Va),
        ]:
            ref = model.jacobian(Vm, Va).tocsc()[:, keep]
            fast = model.jacobian_reduced(Vm, Va, keep)
            assert fast.shape == ref.shape
            d = (fast - ref).tocoo()
            assert d.nnz == 0 or float(np.abs(d.data).max()) < 1e-13

    def test_reduced_columns_identical(self, net14, pf14, ms14):
        model = MeasurementModel(net14, ms14)
        keep = np.ones(2 * net14.n_bus, dtype=bool)
        keep[net14.slack_buses[0]] = False  # drop the slack angle column
        ref = model.jacobian(pf14.Vm, pf14.Va).tocsc()[:, keep]
        fast = model.jacobian_reduced(pf14.Vm, pf14.Va, keep)
        assert fast.shape == ref.shape
        d = (fast - ref).tocoo()
        assert d.nnz == 0 or float(np.abs(d.data).max()) < 1e-13

    def test_structure_is_cached(self, net14, pf14, ms14):
        model = MeasurementModel(net14, ms14)
        keep = np.ones(2 * net14.n_bus, dtype=bool)
        s1 = model.jacobian_structure(keep)
        s2 = model.jacobian_structure(keep.copy())
        assert s1 is s2


class TestGainSolverParity:
    """Stateful solver (reused ordering) vs one-shot solves, per iteration."""

    def test_lu_refactor_matches_oneshot(self, net14, pf14, ms14):
        model = MeasurementModel(net14, ms14)
        w = ms14.weights
        keep = np.ones(2 * net14.n_bus, dtype=bool)
        solver = GainSolver("lu")
        Vm, Va = np.ones(net14.n_bus), np.zeros(net14.n_bus)
        for _ in range(3):
            H = model.jacobian_reduced(Vm, Va, keep)
            r = ms14.z - model.h(Vm, Va)
            dx = solver.solve(H, w, r)
            ref = solve_normal_equations(H, w, r, method="lu")
            assert float(np.abs(dx - ref).max()) < 1e-10
            Va = Va + dx[: net14.n_bus]
            Vm = Vm + dx[net14.n_bus :]

    def test_estimator_cache_toggle(self, net118, ms118):
        hot = WlsEstimator(net118, ms118, use_cache=True).estimate()
        cold = WlsEstimator(net118, ms118, use_cache=False).estimate()
        assert hot.iterations == cold.iterations
        assert float(np.abs(hot.Vm - cold.Vm).max()) < 1e-10
        assert float(np.abs(hot.Va - cold.Va).max()) < 1e-10

    def test_repeated_estimates_identical(self, net118, ms118):
        est = WlsEstimator(net118, ms118)
        a = est.estimate()
        b = est.estimate()  # second call reuses pattern + ordering caches
        assert np.array_equal(a.Vm, b.Vm)
        assert np.array_equal(a.Va, b.Va)


class TestSolverAgreement:
    @pytest.mark.parametrize("case", ["net14", "net118"])
    @pytest.mark.parametrize("solver", ["pcg", "lsqr"])
    def test_methods_agree(self, case, solver, request):
        ms = request.getfixturevalue("ms" + case[3:])
        net = request.getfixturevalue(case)
        ref = WlsEstimator(net, ms, solver="lu").estimate()
        res = WlsEstimator(net, ms, solver=solver).estimate()
        assert np.allclose(res.Vm, ref.Vm, atol=1e-7)
        assert np.allclose(res.Va, ref.Va, atol=1e-7)


class TestDseParity:
    def test_cached_matches_seed_semantics(self, dse118):
        """Caches + warm starts vs the uncached cold-start reference."""
        dec, ms = dse118
        hot = DistributedStateEstimator(dec, ms).run()
        ref = DistributedStateEstimator(
            dec, ms, reuse_structures=False, warm_start=False
        ).run()
        assert float(np.abs(hot.Vm - ref.Vm).max()) < 1e-10
        assert float(np.abs(hot.Va - ref.Va).max()) < 1e-10

    def test_no_warm_start_tight_parity(self, dse118):
        """With warm starts off, the caches only change round-off.

        The cached fill sums duplicate entries in a different order than
        the from-scratch Jacobian build, so bit-equality is not attainable
        — but the drift must stay at machine precision.
        """
        dec, ms = dse118
        hot = DistributedStateEstimator(dec, ms, warm_start=False).run()
        ref = DistributedStateEstimator(
            dec, ms, reuse_structures=False, warm_start=False
        ).run()
        assert float(np.abs(hot.Vm - ref.Vm).max()) < 1e-12
        assert float(np.abs(hot.Va - ref.Va).max()) < 1e-12

    def test_threads_bitwise_equal_serial(self, dse118):
        dec, ms = dse118
        serial = DistributedStateEstimator(
            dec, ms, executor=SerialExecutor()
        ).run()
        with ThreadPoolBackend(4) as pool:
            threaded = DistributedStateEstimator(dec, ms, executor=pool).run()
        assert np.array_equal(serial.Vm, threaded.Vm)
        assert np.array_equal(serial.Va, threaded.Va)

    def test_empty_fault_plan_keeps_bitwise_parity(self, dse118):
        """With an injector installed but no rules firing, the DSE stays
        bit-identical across executors — the off-by-default guarantee."""
        from repro import faults
        from repro.faults import FaultPlan

        dec, ms = dse118
        ref = DistributedStateEstimator(dec, ms).run()
        with faults.injection(FaultPlan(seed=99)) as inj:
            serial = DistributedStateEstimator(dec, ms).run()
            with ThreadPoolBackend(4) as pool:
                threaded = DistributedStateEstimator(
                    dec, ms, executor=pool
                ).run()
        assert inj.total_fired() == 0
        for got in (serial, threaded):
            assert got.degraded_subsystems == []
            assert np.array_equal(got.Vm, ref.Vm)
            assert np.array_equal(got.Va, ref.Va)

    def test_live_fastpath_values_only_frames_bitwise(self, dse118):
        """Repeated values-only frames over the live fast-path fabric stay
        bit-identical to the in-process DSE's warm ``run(z=)`` path."""
        from repro.core import LiveDseRuntime

        dec, ms = dse118
        rng = np.random.default_rng(42)
        dse = DistributedStateEstimator(dec, ms)
        live = LiveDseRuntime(dec, ms, fast=True)
        for _ in range(2):
            z = ms.z + rng.normal(0.0, 1e-4, size=len(ms.z))
            ref = dse.run(z=z)
            got = live.run(z=z)
            assert got.errors == []
            assert np.array_equal(got.Vm, ref.Vm)
            assert np.array_equal(got.Va, ref.Va)


class TestExecutor:
    def test_make_executor_specs(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ThreadPoolBackend)
        assert pool.n_workers == 3
        assert make_executor(pool) is pool
        pool.shutdown()
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_map_order_and_workers(self):
        with ThreadPoolBackend(4) as pool:
            out = pool.map(lambda i: i * i, range(20))
            assert out == [i * i for i in range(20)]
            idx = set(pool.map(lambda _: pool.worker_index(), range(20)))
            assert idx <= set(range(4))

    def test_map_propagates_exceptions(self):
        def boom(i):
            if i == 3:
                raise RuntimeError("task failed")
            return i

        with ThreadPoolBackend(2) as pool:
            with pytest.raises(RuntimeError, match="task failed"):
                pool.map(boom, range(5))
