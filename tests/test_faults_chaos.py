"""Seeded chaos tests over the live middleware fabric and the full stack.

One contract throughout: under a seeded fault plan the stack must
*converge or degrade* — complete within a bounded wall time, mark the
affected subsystems degraded, never hang — and the same seed must replay
exactly the same faults (``FaultInjector.fired_summary`` is the witness).
"""

import time

import numpy as np
import pytest

from repro import faults
from repro.core import ArchitecturePrototype, DseSession, LiveDseRuntime
from repro.dse import decompose, dse_pmu_placement
from repro.faults import FaultInjector, FaultPlan
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements
from repro.middleware import ClientClosed, MiddlewareError
from repro.middleware.router import MiddlewareFabric
from repro.parallel import ProcessPoolBackend


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.uninstall()
    yield
    faults.uninstall()


# ---------------------------------------------------------------------------
# Chaos fuzz: random seeded plans over an all-pairs fast-plane fabric
# ---------------------------------------------------------------------------

N_SITES = 4
SITES = [f"se{i}" for i in range(N_SITES)]
ROUNDS = 6
RECV_TIMEOUT = 0.25


def _fuzz_fabric(plan: FaultPlan):
    """Drive ``ROUNDS`` of all-pairs traffic through a fast-plane fabric
    under ``plan``; every send/recv outcome is accounted, nothing may
    hang.  Returns ``(delivered, missed, fired_summary)``."""
    delivered = missed = 0
    inj = FaultInjector(plan)
    with faults.injection(inj):
        with MiddlewareFabric(list(SITES), fast=True) as fabric:
            for rnd in range(ROUNDS):
                payload = bytes([rnd]) * 64
                for src in SITES:
                    for dst in SITES:
                        if dst == src:
                            continue
                        try:
                            fabric.send(src, dst, payload)
                        except (MiddlewareError, ConnectionError, OSError):
                            missed += 1
                for name in SITES:
                    for _ in range(N_SITES - 1):
                        try:
                            fabric.recv(name, timeout=RECV_TIMEOUT)
                            delivered += 1
                        except (ClientClosed, MiddlewareError):
                            missed += 1
                            break
                        except TimeoutError:
                            missed += 1
    return delivered, missed, inj.fired_summary()


class TestChaosFuzzFabric:
    def test_empty_plan_full_delivery(self):
        delivered, missed, fired = _fuzz_fabric(FaultPlan(seed=5))
        assert fired == {}
        assert missed == 0
        assert delivered == ROUNDS * N_SITES * (N_SITES - 1)

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_bounded_and_replayable(self, seed):
        plan = FaultPlan.random(
            seed,
            layers=("mux.forward",),
            n_rules=4,
            max_probability=0.25,
            max_delay=0.002,
        )
        t0 = time.monotonic()
        delivered, missed, fired = _fuzz_fabric(plan)
        elapsed = time.monotonic() - t0
        # worst case (every site dead) is ~ROUNDS * sites * recvs * timeout
        assert elapsed < 60.0
        total = ROUNDS * N_SITES * (N_SITES - 1)
        dupes = sum(
            n for (_l, _k, act), n in fired.items() if act == "duplicate"
        )
        assert 0 < delivered + missed
        assert delivered <= total + dupes
        # exact replay: fresh fabric, fresh injector, same plan
        _, _, fired2 = _fuzz_fabric(plan)
        assert fired2 == fired


# ---------------------------------------------------------------------------
# Live runtime under a drop plan: degrades, never hangs, replays
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def live_chaos_setup():
    net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
    pf = run_ac_power_flow(net, flat_start=True)
    dec = decompose(net, 3, seed=0)
    rng = np.random.default_rng(5)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    return dec, ms


class TestLiveRuntimeChaos:
    @pytest.mark.parametrize("seed", [3, 9])
    def test_drop_plan_degrades_never_hangs(self, live_chaos_setup, seed):
        dec, ms = live_chaos_setup
        plan = FaultPlan(seed=seed).add("mux.forward", "drop", probability=0.5)
        t0 = time.monotonic()
        with faults.injection(plan) as inj:
            res = LiveDseRuntime(
                dec, ms, fast=True, recv_timeout=1.0, round_deadline=5.0
            ).run(rounds=2)
        assert time.monotonic() - t0 < 120.0
        fired = inj.fired_summary()
        # a dropped frame starves exactly its destination for that round
        starved = {dst for (_l, (_src, dst), _a) in fired}
        assert starved <= set(res.degraded)
        if fired:
            assert res.errors
        # the per-key event streams are fixed (every site sends every
        # round), so a fresh run under the same plan fires identically
        with faults.injection(plan) as inj2:
            LiveDseRuntime(
                dec, ms, fast=True, recv_timeout=1.0, round_deadline=5.0
            ).run(rounds=2)
        assert inj2.fired_summary() == fired


# ---------------------------------------------------------------------------
# ISSUE 5 acceptance scenario: IEEE-118, 9 subsystems, fast fabric,
# supervised process pool; hard-disconnect one site mid-exchange and kill
# one pool worker — complete, degrade exactly, reproduce exactly.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def ms118_9(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    return generate_measurements(net118, plac, pf118, rng=rng)


def _run_acceptance(net, ms, plan):
    """One fresh end-to-end run of the acceptance scenario; returns
    ``(report, fired_summary, pool_respawns)``."""
    with ProcessPoolBackend(2) as pool:
        with ArchitecturePrototype.assemble(
            net, m_subsystems=9, seed=0, with_fabric=True, fabric_fast=True
        ) as arch:
            session = DseSession(
                arch, executor=pool, degrade_on_failure=True,
                fabric_timeout=0.3,
            )
            with faults.injection(plan) as inj:
                report = session.process_frame(ms)
            fired = inj.fired_summary()
        respawns = pool.respawns
    return report, fired, respawns


class TestAcceptanceScenario:
    PLAN = (
        FaultPlan(seed=2026)
        .add("mux.forward", "disconnect", key=(None, 8), count=1)
        .add("worker", "kill", key=3, count=1)
    )

    def test_disconnect_plus_worker_kill_degrades_exactly_and_replays(
        self, net118, ms118_9
    ):
        dec = decompose(net118, 9, seed=0)
        # the disconnected site misses everything; each of its neighbours
        # misses exactly the one update it would have sent them
        expected = sorted({8} | {int(b) for b in dec.neighbors(8)})

        t0 = time.monotonic()
        report, fired, respawns = _run_acceptance(net118, ms118_9, self.PLAN)
        elapsed = time.monotonic() - t0

        assert elapsed < 300.0  # bounded by deadlines, not by hangs
        assert report.degraded_subsystems == expected
        # the killed worker broke the pool once; the supervisor respawned
        # it warm and the re-run completed without further faults
        assert respawns >= 1
        kills = [
            (k, n) for (layer, k, act), n in fired.items()
            if layer == "worker" and act == "kill"
        ]
        assert kills == [(3, 1)]
        disconnects = [
            (k, n) for (layer, k, act), n in fired.items()
            if layer == "mux.forward" and act == "disconnect"
        ]
        assert len(disconnects) == 1
        assert disconnects[0][0][1] == 8 and disconnects[0][1] == 1

        # identical seed, fresh stack: identical faults, identical report
        report2, fired2, _ = _run_acceptance(net118, ms118_9, self.PLAN)
        assert fired2 == fired
        assert report2.degraded_subsystems == report.degraded_subsystems
        assert report2.rounds == report.rounds
        assert report2.bytes_exchanged == report.bytes_exchanged
