"""Tests for the fluent NetworkBuilder."""

import numpy as np
import pytest

from repro.grid import BusType, NetworkBuilder, run_ac_power_flow
from repro.grid.cases import case4


def _basic_builder():
    return (
        NetworkBuilder(base_mva=100)
        .add_bus(1, slack=True, vm=1.02)
        .add_bus(2, pd=30, qd=10)
        .add_bus(3, pd=80, qd=30)
        .add_gen(1)
        .add_gen(2, pg=80, vg=1.01)
        .add_line(1, 2, r=0.01, x=0.05, b=0.02)
        .add_line(1, 3, r=0.02, x=0.08)
        .add_line(2, 3, r=0.02, x=0.06)
    )


class TestBuilder:
    def test_builds_solvable_network(self):
        net = _basic_builder().build()
        assert net.n_bus == 3
        pf = run_ac_power_flow(net, flat_start=True)
        assert pf.converged

    def test_gen_promotes_bus_to_pv(self):
        net = _basic_builder().build()
        assert net.bus_type[net.index_of(2)] == BusType.PV

    def test_out_of_service_gen_no_promotion(self):
        net = (
            NetworkBuilder()
            .add_bus(1, slack=True)
            .add_bus(2, pd=10)
            .add_gen(2, pg=10, in_service=False)
            .add_line(1, 2, r=0.01, x=0.05)
            .build()
        )
        assert net.bus_type[net.index_of(2)] == BusType.PQ

    def test_transformer(self):
        net = (
            NetworkBuilder()
            .add_bus(1, slack=True)
            .add_bus(2, pd=5)
            .add_transformer(1, 2, x=0.1, tap=0.98, shift_deg=5.0)
            .build()
        )
        assert net.tap[0] == pytest.approx(0.98)
        assert net.shift[0] == pytest.approx(np.deg2rad(5.0))

    def test_loads_converted_to_per_unit(self):
        net = _basic_builder().build()
        assert net.Pd[net.index_of(3)] == pytest.approx(0.8)

    def test_matches_equivalent_case_dict(self):
        """The builder is sugar over Network.from_case."""
        built = (
            NetworkBuilder(base_mva=100, name="case4")
            .add_bus(1, slack=True, vm=1.02)
            .add_bus(2, pd=30, qd=10)
            .add_bus(3, pd=80, qd=30)
            .add_bus(4, pd=50, qd=20, area=2)
            .add_gen(1, vg=1.02)
            .add_gen(2, pg=80, vg=1.01)
            .add_line(1, 2, r=0.01, x=0.05, b=0.02)
            .add_line(1, 3, r=0.02, x=0.08, b=0.02)
            .add_line(2, 3, r=0.02, x=0.06, b=0.02)
            .add_line(2, 4, r=0.03, x=0.10, b=0.03)
            .add_line(3, 4, r=0.02, x=0.07, b=0.02)
            .build()
        )
        ref = case4()
        pf_b = run_ac_power_flow(built, flat_start=True)
        pf_r = run_ac_power_flow(ref, flat_start=True)
        assert np.allclose(pf_b.Vm, pf_r.Vm, atol=1e-9)
        assert np.allclose(pf_b.Va, pf_r.Va, atol=1e-9)


class TestBuilderValidation:
    def test_duplicate_bus(self):
        b = NetworkBuilder().add_bus(1, slack=True)
        with pytest.raises(ValueError, match="duplicate"):
            b.add_bus(1)

    def test_two_slacks(self):
        b = NetworkBuilder().add_bus(1, slack=True)
        with pytest.raises(ValueError, match="slack"):
            b.add_bus(2, slack=True)

    def test_missing_slack(self):
        b = NetworkBuilder().add_bus(1).add_bus(2).add_line(1, 2, r=0.01, x=0.1)
        with pytest.raises(ValueError, match="slack"):
            b.build()

    def test_gen_unknown_bus(self):
        b = NetworkBuilder().add_bus(1, slack=True)
        with pytest.raises(ValueError, match="unknown bus"):
            b.add_gen(9)

    def test_line_unknown_bus(self):
        b = NetworkBuilder().add_bus(1, slack=True)
        with pytest.raises(ValueError, match="unknown bus"):
            b.add_line(1, 9, r=0.01, x=0.1)

    def test_bad_tap(self):
        b = NetworkBuilder().add_bus(1, slack=True).add_bus(2)
        with pytest.raises(ValueError, match="tap"):
            b.add_transformer(1, 2, x=0.1, tap=0.0)

    def test_empty_build(self):
        with pytest.raises(ValueError, match="no buses"):
            NetworkBuilder().build()

    def test_bad_base_mva(self):
        with pytest.raises(ValueError):
            NetworkBuilder(base_mva=0)
