"""Tests for derived operational outputs and the casefile CLI."""

import numpy as np
import pytest

from repro.estimation import (
    area_interchange,
    derive_outputs,
    estimate_state,
)
from repro.measurements import full_placement, generate_measurements
from repro.tools.casefile import main as casefile_main


@pytest.fixture(scope="module")
def est118(net118, pf118):
    rng = np.random.default_rng(0)
    ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
    return estimate_state(net118, ms)


class TestDeriveOutputs:
    def test_matches_power_flow_at_truth(self, net118, pf118):
        """Feeding the exact PF state reproduces the PF quantities."""
        class FakeResult:
            Vm = pf118.Vm
            Va = pf118.Va

        out = derive_outputs(net118, FakeResult())
        assert np.allclose(out.P, pf118.P, atol=1e-10)
        assert np.allclose(out.Pf, pf118.Pf, atol=1e-10)
        assert np.allclose(out.Qt, pf118.Qt, atol=1e-10)

    def test_losses_near_truth(self, net118, pf118, est118):
        out = derive_outputs(net118, est118)
        true_loss = (pf118.Pf + pf118.Pt).sum()
        assert out.total_loss_p == pytest.approx(true_loss, rel=0.02)

    def test_losses_nonnegative_per_branch(self, net118, est118):
        out = derive_outputs(net118, est118)
        assert np.all(out.branch_loss_p > -1e-6)

    def test_generation_load_balance(self, net118, est118):
        """Generation = load + losses (Kirchhoff at the estimate)."""
        out = derive_outputs(net118, est118)
        assert out.total_generation_p == pytest.approx(
            out.total_load_p + out.total_loss_p, rel=1e-6
        )

    def test_dead_branch_zero_flow(self, net118, est118):
        net = net118.copy()
        net.br_status[5] = 0
        out = derive_outputs(net, est118)
        assert out.Pf[5] == 0.0
        assert out.Qt[5] == 0.0


class TestAreaInterchange:
    def test_exports_sum_to_tie_losses(self, net118, est118):
        ic = area_interchange(net118, est118)
        assert set(ic) == {1, 2, 3}
        total = sum(ic.values())
        # exports - imports = losses on the tie lines: small and positive
        assert 0 <= total < 0.1

    def test_truth_interchange(self, net118, pf118):
        class FakeResult:
            Vm = pf118.Vm
            Va = pf118.Va

        ic = area_interchange(net118, FakeResult())
        # recompute by hand from PF flows
        expect = {1: 0.0, 2: 0.0, 3: 0.0}
        for k in net118.live_branches():
            a, b = int(net118.area[net118.f[k]]), int(net118.area[net118.t[k]])
            if a != b:
                expect[a] += float(pf118.Pf[k])
                expect[b] += float(pf118.Pt[k])
        for a in expect:
            assert ic[a] == pytest.approx(expect[a], abs=1e-10)

    def test_custom_labels(self, net118, est118):
        labels = np.zeros(118, dtype=int)
        labels[59:] = 1
        ic = area_interchange(net118, est118, labels)
        assert set(ic) == {0, 1}

    def test_label_length_checked(self, net118, est118):
        with pytest.raises(ValueError):
            area_interchange(net118, est118, np.zeros(5))


class TestCasefileCli:
    def test_info(self, capsys):
        assert casefile_main(["--case", "case118", "--info"]) == 0
        out = capsys.readouterr().out
        assert "118 buses" in out
        assert "4242.0 MW" in out

    def test_solve(self, capsys):
        assert casefile_main(["--case", "case14", "--solve"]) == 0
        assert "converged" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "c.m"
        assert casefile_main(["--case", "case14", "--out", str(out_path)]) == 0
        assert casefile_main(
            ["--in", str(out_path), "--info", "--solve"]
        ) == 0
        out = capsys.readouterr().out
        assert "14 buses" in out
        assert "converged" in out

    def test_default_prints_info(self, capsys):
        assert casefile_main(["--case", "case4"]) == 0
        assert "4 buses" in capsys.readouterr().out
