"""Tests for the runtime health plane (repro.obs.health).

Unit coverage runs the watchdog, SLO burn-rate engine, flight recorder
and telemetry delta pipeline against injected clocks, so every staleness
and hysteresis decision is deterministic.  The chaos acceptance test at
the bottom drives the full stack: a seeded PR-5 ``FaultPlan`` kills a
shard replica mid-load, the health plane must emit a blackbox JSONL
whose meta (trigger + ``fired_summary``) replays bit-for-bit, the
``shard.lost`` event must fire before the router's rehash completes its
drain, and the SLO engine must report the availability burn.  Finally,
health disabled must leave estimator outputs bitwise identical.
"""

import json

import numpy as np
import pytest

from repro import faults, obs
from repro.contingency import enumerate_n1
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.faults import FaultPlan
from repro.measurements import full_placement, generate_measurements
from repro.obs.aggregate import TelemetryAggregator, TelemetryPublisher
from repro.obs.export import (
    build_trace_trees,
    load_jsonl,
    render_prometheus,
    render_prometheus_snapshots,
)
from repro.obs.health import (
    FlightRecorder,
    HealthMonitor,
    SloEngine,
    SloSpec,
    Watchdog,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ProcessPoolBackend
from repro.serving import LoadGenerator, ScenarioMix, ScenarioService, ShardRouter
from repro.serving.requests import ServiceStats
from repro.serving.shard import RouterStats


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def health_on(tmp_path):
    """Full obs + health plane for one test, restored after."""
    obs.configure(
        enabled=True, health=True, reset=True,
        health_dump_dir=tmp_path / "blackboxes",
        slo=["avail:availability:0.999"],
    )
    yield obs.health()
    obs.configure(
        enabled=False, health=False, reset=True,
        health_dump_dir=None, slo=[],
    )


@pytest.fixture(scope="module")
def chaos14(net14, pf14):
    dec = decompose(net14, 2, seed=0)
    rng = np.random.default_rng(11)
    plac = full_placement(net14).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net14, plac, pf14, rng=rng)
    safe, _ = enumerate_n1(net14)
    return dec, ms, tuple(safe[:6])


# -- watchdog ---------------------------------------------------------------
class TestWatchdog:
    def test_beat_keeps_watch_alive(self):
        clk = FakeClock()
        wd = Watchdog(clock=clk)
        tok = wd.arm("loop", timeout=1.0)
        for _ in range(5):
            clk.advance(0.8)
            wd.beat(tok)
            assert wd.check() == []
        assert tok.beats == 5 and wd.trips == 0

    def test_stall_trips_once_per_episode(self):
        clk = FakeClock()
        wd = Watchdog(clock=clk)
        tok = wd.arm("loop", timeout=1.0, source="se0")
        clk.advance(1.5)
        assert wd.check() == [tok] and tok.tripped
        # still stalled: no re-fire until the next beat clears the episode
        clk.advance(10.0)
        assert wd.check() == []
        wd.beat(tok)
        assert not tok.tripped
        clk.advance(1.5)
        assert wd.check() == [tok]
        assert wd.trips == 2

    def test_gate_idle_suppresses_and_refreshes(self):
        clk = FakeClock()
        wd = Watchdog(clock=clk)
        busy = [False]
        tok = wd.arm("dispatch", timeout=1.0, gate=lambda: busy[0])
        # idle far past the timeout: never a stall, deadline keeps moving
        clk.advance(50.0)
        assert wd.check() == []
        # work arrives: the full timeout applies from *now*
        busy[0] = True
        clk.advance(0.5)
        assert wd.check() == []
        clk.advance(0.6)
        assert wd.check() == [tok]

    def test_gate_exception_counts_as_idle(self):
        clk = FakeClock()
        wd = Watchdog(clock=clk)

        def bad_gate():
            raise RuntimeError("gone")

        wd.arm("dying", timeout=1.0, gate=bad_gate)
        clk.advance(5.0)
        assert wd.check() == []

    def test_disarm_and_validation(self):
        clk = FakeClock()
        wd = Watchdog(clock=clk)
        tok = wd.arm("once", timeout=1.0)
        wd.disarm(tok)
        clk.advance(9.0)
        assert wd.check() == [] and wd.active() == []
        with pytest.raises(ValueError):
            wd.arm("bad", timeout=0.0)


# -- SLO specs + engine -----------------------------------------------------
class TestSloSpec:
    def test_parse_full_grammar(self):
        s = SloSpec.parse("lat:latency:0.95:0.2:1/10:2")
        assert s.name == "lat" and s.kind == "latency"
        assert s.objective == 0.95 and s.threshold == 0.2
        assert s.windows == (1.0, 10.0) and s.burn_threshold == 2.0

    def test_parse_empty_positions_keep_defaults(self):
        s = SloSpec.parse("shed:shed_budget:0.99::2/20")
        assert s.threshold == 0.0 and s.windows == (2.0, 20.0)
        assert s.burn_threshold == 1.0

    @pytest.mark.parametrize("bad", [
        "lat:latency",                 # too few positions
        "x:bogus:0.9",                 # unknown kind
        "x:availability:1.5",          # objective out of (0,1)
        "x:latency:0.9",               # latency without threshold
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)

    def test_latency_slo_rejects_router_source(self):
        eng = SloEngine()
        spec = SloSpec("lat", "latency", objective=0.9, threshold=0.1)
        with pytest.raises(ValueError):
            eng.track(spec, RouterStats())


class TestSloEngine:
    def _engine(self, reg=None):
        clk = FakeClock()
        return clk, SloEngine(registry=reg, clock=clk)

    def test_latency_burn_with_hysteresis(self):
        reg = MetricsRegistry()
        clk, eng = self._engine(reg)
        stats = ServiceStats()
        spec = SloSpec("lat", "latency", objective=0.9, threshold=0.01,
                       windows=(1.0, 5.0), hysteresis=2)
        eng.track(spec, stats, source_name="svc")
        # healthy traffic: everything under the threshold
        for _ in range(20):
            stats.record_request(0.001)
        assert eng.evaluate(clk.advance(1.0)) == []
        # sustained slow burst: 50% of new requests over threshold each
        # second -> burn 5.0 in both windows
        for _ in range(10):
            stats.record_request(0.5)
            stats.record_request(0.001)
        assert eng.evaluate(clk.advance(1.0)) == []   # streak 1 of 2
        for _ in range(10):
            stats.record_request(0.5)
            stats.record_request(0.001)
        fired = eng.evaluate(clk.advance(1.0))        # streak 2: alert
        assert len(fired) == 1 and fired[0]["slo"] == "lat"
        assert eng.hint_for(stats) == 1
        burn = reg.gauge("health.slo.burn_rate",
                         slo="lat", source="svc", window="1.0").value
        assert burn >= 1.0
        assert reg.gauge("health.slo.burning", slo="lat", source="svc").value == 1.0
        # recovery needs the same number of clean evaluations
        for _ in range(400):
            stats.record_request(0.001)
        eng.evaluate(clk.advance(10.0))
        assert eng.status()[0]["burning"] is True     # streak 1 of 2 clean
        eng.evaluate(clk.advance(10.0))
        assert eng.status()[0]["burning"] is False
        assert eng.hint_for(stats) == 0

    def test_availability_burn_counts_lost_replicas_no_hint(self):
        clk, eng = self._engine()
        stats = RouterStats()
        spec = SloSpec("avail", "availability", objective=0.999,
                       windows=(1.0, 5.0), hysteresis=1)
        eng.track(spec, stats, source_name="router")
        stats._bump("completed", 50)
        eng.evaluate(clk.advance(1.0))
        stats._bump("completed", 50)
        stats._bump("replicas_lost")
        fired = eng.evaluate(clk.advance(1.0))
        assert len(fired) == 1 and fired[0]["kind"] == "availability"
        # availability burns never hint the autoscaler
        assert eng.hint_for(stats) == 0

    def test_no_traffic_is_not_a_burn(self):
        clk, eng = self._engine()
        stats = ServiceStats()
        eng.track(SloSpec("shed", "shed_budget", objective=0.99,
                          hysteresis=1), stats)
        for _ in range(5):
            assert eng.evaluate(clk.advance(1.0)) == []

    def test_untrack_source_detaches(self):
        clk, eng = self._engine()
        stats = ServiceStats()
        eng.track(SloSpec("shed", "shed_budget", objective=0.99), stats)
        eng.untrack_source(stats)
        assert eng.status() == []


# -- flight recorder --------------------------------------------------------
class TestFlightRecorder:
    def test_dump_round_trips_through_load_jsonl(self, tmp_path):
        clk = FakeClock()
        mon = HealthMonitor(clock=clk)
        mon.recorder.record_span(
            {"kind": "span", "name": "s2.round", "trace": 9, "span": 1,
             "parent": None, "start": 0.0, "dur": 0.1, "status": "ok",
             "attrs": {}}
        )
        mon.emit("frame.degraded", "se0", round=3)
        mon.registry.counter("live.degraded_rounds_total").inc()
        path = tmp_path / "bb.jsonl"
        assert mon.dump(path, reason="test") == str(path)
        data = load_jsonl(path)
        assert data["meta"]["blackbox"] is True
        assert data["meta"]["trigger"] == "test"
        assert [s["name"] for s in data["spans"]] == ["s2.round"]
        events = [e["event"] for e in data["events"]]
        assert events == ["frame.degraded", "manual"]
        assert build_trace_trees(data["spans"])  # replayable span tree
        names = {m["name"] for m in data["metrics"]}
        assert "live.degraded_rounds_total" in names
        assert "health.events_total" in names

    def test_trigger_rate_limited_and_ring_bounded(self, tmp_path):
        clk = FakeClock()
        rec = FlightRecorder(dump_dir=tmp_path, min_dump_interval=1.0,
                             clock=clk, event_capacity=4)
        assert rec.trigger("shard.lost") is not None
        assert rec.trigger("shard.lost") is None        # storm suppressed
        clk.advance(1.5)
        p = rec.trigger("watchdog.stall")
        assert p is not None and "watchdog-stall" in p
        assert len(rec.dumps) == 2
        for i in range(10):
            rec.record_event(obs.HealthEvent(kind="manual", source=str(i)))
        assert len(rec.events()) == 4                    # ring bound holds

    def test_no_dump_dir_means_no_auto_dump(self):
        rec = FlightRecorder()
        assert rec.trigger("shard.lost") is None


class TestHealthMonitor:
    def test_shed_burst_detection_with_rearm(self):
        clk = FakeClock()
        mon = HealthMonitor(clock=clk, shed_burst=5, shed_burst_window=1.0)
        seen = []
        mon.add_listener(lambda ev: seen.append(ev.kind))
        for _ in range(4):                       # under the burst size
            mon.note_shed("serving", "queue_full")
        assert seen == []
        mon.note_shed("serving", "queue_full")   # 5th inside the window
        assert seen == ["shed.burst"]
        for _ in range(5):                       # same episode: re-armed
            mon.note_shed("serving", "deadline")
        assert seen == ["shed.burst"]
        clk.advance(5.0)
        for _ in range(5):
            mon.note_shed("serving", "deadline")
        assert seen == ["shed.burst", "shed.burst"]

    def test_tick_emits_watchdog_and_slo_events(self):
        clk = FakeClock()
        mon = HealthMonitor(clock=clk)
        tok = mon.watch("live.site:0", timeout=1.0, source="se0")
        stats = RouterStats()
        mon.default_slos = [SloSpec("avail", "availability", objective=0.99,
                                    windows=(0.5, 1.0), hysteresis=1)]
        assert mon.watch_router("router", stats) == 1
        mon.tick(clk.advance(0.1))               # baseline SLO sample
        stats._bump("completed", 10)
        stats._bump("replicas_lost")
        out = mon.tick(clk.advance(2.0))
        kinds = sorted(ev.kind for ev in out)
        assert kinds == ["slo.burn", "watchdog.stall"]
        assert mon.registry.counter(
            "health.watchdog.trips_total", watch="live.site:0").value == 1
        assert mon.registry.counter(
            "health.slo.trips_total", slo="avail").value == 1
        assert len(mon.recorder.snapshots()) == 2
        mon.disarm(tok)

    def test_listener_exception_does_not_break_emit(self):
        mon = HealthMonitor()

        def boom(ev):
            raise RuntimeError("listener bug")

        mon.add_listener(boom)
        ev = mon.emit("manual", "test")
        assert ev.seq == 1
        assert mon.registry.counter("health.events_total", kind="manual").value == 1


# -- obs hub wiring ---------------------------------------------------------
class TestObsWiring:
    def test_disabled_by_default_and_lazy_monitor(self):
        assert not obs.health_enabled()
        mon = obs.health()                       # accessible, still off
        assert isinstance(mon, HealthMonitor)
        assert not obs.health_enabled()

    def test_configure_health_wires_tracer_mirror(self, health_on):
        assert obs.health_enabled()
        assert obs.tracer().mirror is not None
        with obs.span("demo.step"):
            pass
        names = [s["name"] for s in health_on.recorder.spans()]
        assert "demo.step" in names
        obs.configure(health=False)
        assert obs.tracer().mirror is None

    def test_configure_slo_strings_coerced(self, health_on):
        obs.configure(slo=["lat:latency:0.9:0.25", "avail:availability:0.99"])
        kinds = [s.kind for s in obs.health().default_slos]
        assert kinds == ["latency", "availability"]


# -- satellite 2: exception-safe span context restoration -------------------
class TestSpanContextRestoration:
    def test_raise_mid_span_restores_context(self, health_on):
        def boom(span_dict):
            raise RuntimeError("mirror bug")

        obs.tracer().mirror = boom
        with pytest.raises(RuntimeError, match="mirror bug"):
            with obs.span("outer"):
                pass
        # the context var must be restored even though end() raised;
        # without the try/finally in Span.__exit__ the dead span leaks
        # and every later span in this thread is parented under it
        assert obs.current_context() is None
        obs.tracer().mirror = health_on.recorder.record_span
        with obs.span("after"):
            ctx = obs.current_context()
            assert ctx is not None
        after = [s for s in obs.tracer().finished() if s["name"] == "after"]
        assert after and after[0]["parent"] is None   # a fresh root

    def test_leak_free_across_thread_pool_reactivation(self, health_on):
        from repro.parallel import ThreadPoolBackend

        def boom(span_dict):
            if span_dict["name"] == "task":
                raise RuntimeError("sink died")

        obs.tracer().mirror = boom

        def work(i):
            try:
                with obs.span("task", i=i):
                    pass
            except RuntimeError:
                pass
            ctx = obs.current_context()
            return ctx.span_id if ctx is not None else None

        with ThreadPoolBackend(2) as ex:
            leaked = [r for r in ex.map(work, list(range(8))) if r is not None]
        # pool threads are reused: one leaked token would parent every
        # subsequent task on that thread under a finished span
        assert leaked == []


# -- telemetry aggregation plane --------------------------------------------
class TestTelemetry:
    def test_publisher_sends_deltas_only(self):
        reg = MetricsRegistry()
        pub = TelemetryPublisher("site-a", reg)
        agg = TelemetryAggregator()
        send = lambda payload: agg.ingest(payload)  # noqa: E731

        reg.counter("serving.requests_total").inc(3)
        reg.gauge("pool.size").set(2)
        reg.histogram("lat.seconds").observe(0.01)
        assert pub.publish(send) == 3
        assert pub.publish(send) == 0                # idle: nothing sent
        reg.counter("serving.requests_total").inc(2)
        assert pub.publish(send) == 1                # only the counter moved

        agg_counter = agg.registry.counter(
            "serving.requests_total", site="site-a")
        assert agg_counter.value == 5.0
        hist = agg.registry.get("lat.seconds", site="site-a")
        assert hist.count == 1 and hist.sum == pytest.approx(0.01)
        assert agg.frames_ingested == 2

    def test_histogram_bucket_deltas_merge_exactly(self):
        reg = MetricsRegistry()
        pub = TelemetryPublisher("s", reg)
        agg = TelemetryAggregator()
        h = reg.histogram("d")
        for v in (0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        pub.publish(agg.ingest)
        for v in (0.002, 0.02):
            h.observe(v)
        pub.publish(agg.ingest)
        merged = agg.registry.get("d", site="s")
        assert merged.count == 6
        assert merged.sum == pytest.approx(h.sum)
        assert merged.bucket_counts() == h.bucket_counts()
        assert merged.quantile(0.5) == pytest.approx(h.quantile(0.5))

    def test_telemetry_rides_the_fabric(self):
        from repro.middleware import MiddlewareFabric

        reg = MetricsRegistry()
        reg.counter("dse.rounds_total").inc(7)
        pub = TelemetryPublisher("se1", reg)
        agg = TelemetryAggregator()
        delivered = []
        with MiddlewareFabric(["hub", "se1"], pairs=[("se1", "hub")],
                              fast=True) as fab:
            fab.enable_telemetry(agg.ingest)
            fab.send("se1", "hub", b"app-frame")     # normal traffic
            publish = pub.bind(fab, "se1")
            publish()
            delivered.append(fab.recv("hub", timeout=5.0))
            deadline_hit = False
            try:
                fab.recv("hub", timeout=0.2)
            except Exception:
                deadline_hit = True
        # the app frame arrived; the telemetry frame was consumed at the
        # hub and never surfaced as application traffic
        assert delivered == [b"app-frame"]
        assert deadline_hit
        assert agg.registry.counter("dse.rounds_total", site="se1").value == 7.0

    def test_monitor_tick_runs_publishers(self):
        clk = FakeClock()
        mon = HealthMonitor(clock=clk)
        pub = TelemetryPublisher("site", mon.registry)
        agg = TelemetryAggregator()
        mon.attach_publisher(lambda: pub.publish(agg.ingest))
        mon.registry.counter("serving.requests_total").inc(4)
        mon.tick(clk.advance(1.0))
        assert agg.registry.counter(
            "serving.requests_total", site="site").value == 4.0


# -- satellite 1: prometheus escaping + histogram series --------------------
class TestPrometheusEscaping:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("errs_total", path='C:\\tmp\\"x"', msg="line1\nline2").inc(2)
        h = reg.histogram("lat.seconds", op="solve")
        for v in (0.005, 0.05, 0.5):
            h.observe(v)
        return reg

    def test_label_values_escaped(self):
        text = render_prometheus(self._registry())
        assert r'path="C:\\tmp\\\"x\""' in text
        assert r'msg="line1\nline2"' in text
        assert "\nline2" not in text.replace(r"\nline2", "")  # no raw newline

    def test_histogram_count_and_sum_series(self):
        text = render_prometheus(self._registry())
        assert 'lat_seconds_count{op="solve"} 3' in text
        assert 'lat_seconds_sum{op="solve"} 0.555' in text
        assert 'lat_seconds{op="solve",quantile="0.5"}' in text

    def test_snapshot_render_matches_live_render(self, tmp_path):
        reg = self._registry()
        path = tmp_path / "dump.jsonl"
        obs.export_jsonl(path, registry=reg)
        rendered = render_prometheus_snapshots(load_jsonl(path)["metrics"])
        assert rendered == render_prometheus(reg)


# -- chaos acceptance -------------------------------------------------------
def _run_chaos(dec, ms, cons, dump_dir, *, seed, n_requests=14):
    """One seeded shard-kill run with the health plane armed; returns
    (router, report, monitor, events_seen, rehashed_at_loss)."""
    obs.configure(
        enabled=True, health=True, reset=True, health_dump_dir=dump_dir,
        slo=["avail:availability:0.999:::1"],
    )
    mon = obs.health()
    events = []
    rehashed_at_loss = []
    mix = ScenarioMix(ms, contingencies=cons,
                      frame_weight=0.0, contingency_weight=1.0)
    shards = {
        f"s{i}": ScenarioService(
            dec, ms, executor=ProcessPoolBackend(1, max_task_retries=0),
            max_batch=4, flush_latency=1e-3, batch_solve=False,
        )
        for i in range(2)
    }
    try:
        with ShardRouter(shards, grid="chaos") as router:
            def on_event(ev, _router=router):
                events.append(ev)
                if ev.kind == "shard.lost":
                    rehashed_at_loss.append(_router.stats.rehashed)

            mon.add_listener(on_event)
            mon.tick()                        # SLO baseline before traffic
            plan = FaultPlan(seed=seed).add("worker", "kill", key=0, count=1)
            report = LoadGenerator(router, mix, seed=seed).run(
                rate=40.0, n_requests=n_requests,
                fault_plan=plan, wait_timeout=120.0,
            )
            mon.tick()                        # burn sample after the loss
            burn_events = mon.tick()          # hysteresis (2): alert fires
            slo_trips = mon.registry.counter(
                "health.slo.trips_total", slo="avail").value
        return router, report, mon, events, rehashed_at_loss, burn_events, slo_trips
    finally:
        obs.configure(enabled=False, health=False, reset=True,
                      health_dump_dir=None, slo=[])


class TestChaosBlackbox:
    def test_shard_kill_dumps_replayable_blackbox(self, chaos14, tmp_path):
        dec, ms, cons = chaos14
        router, report, mon, events, rehashed_at_loss, burn_events, slo_trips = (
            _run_chaos(dec, ms, cons, tmp_path / "run", seed=21)
        )
        # the seeded plan fired exactly one worker kill -> one lost replica
        assert sum(report.faults_fired.values()) == 1
        assert router.stats.replicas_lost == 1
        assert report.n_completed == report.n_offered

        # the shard.lost event fired from the loss path, before the
        # router's rehash drained the stranded requests onto survivors
        assert rehashed_at_loss == [0]
        assert router.stats.rehashed >= 1
        kinds = [ev.kind for ev in events]
        assert "shard.lost" in kinds

        # the trigger dumped a self-contained blackbox with the fault
        # plan's fired_summary in the meta header
        dumps = mon.recorder.dumps
        assert dumps, "shard.lost must trigger a blackbox dump"
        data = load_jsonl(dumps[0])
        assert data["meta"]["blackbox"] is True
        assert data["meta"]["trigger"] == "shard.lost"
        fired = data["meta"]["fired_summary"]
        assert fired and any("kill" in k for k in fired)
        assert sum(fired.values()) == 1
        # span tree replays from the artifact alone
        assert build_trace_trees(data["spans"]) is not None
        ev_kinds = [e["event"] for e in data["events"]]
        assert "shard.lost" in ev_kinds
        names = {m["name"] for m in data["metrics"]}
        assert "health.events_total" in names

        # the SLO engine reported the availability burn
        assert any(ev.kind == "slo.burn" for ev in burn_events)
        assert slo_trips >= 1

    def test_blackbox_meta_replays_deterministically(self, chaos14, tmp_path):
        dec, ms, cons = chaos14
        runs = []
        for i in range(2):
            _, report, mon, events, _, _, _ = _run_chaos(
                dec, ms, cons, tmp_path / f"run{i}", seed=33
            )
            data = load_jsonl(mon.recorder.dumps[0])
            runs.append((data["meta"]["fired_summary"], report.faults_fired,
                         [e["event"] for e in data["events"]
                          if e["event"] == "shard.lost"]))
        assert runs[0][0] == runs[1][0]          # byte-identical meta summary
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2] == ["shard.lost"]
        # and the meta summary is exactly the injector's view, re-keyed
        assert {str(k) for k in runs[0][1]} == set(runs[0][0])


# -- health disabled: bitwise parity ----------------------------------------
class TestDisabledParity:
    def test_estimates_bitwise_identical_health_on_off(self, chaos14):
        dec, ms, _ = chaos14
        base = DistributedStateEstimator(dec, ms).run()
        obs.configure(enabled=True, health=True, reset=True)
        try:
            mon = obs.health()
            mon.tick()
            on = DistributedStateEstimator(dec, ms).run()
            mon.tick()
        finally:
            obs.configure(enabled=False, health=False, reset=True)
        off = DistributedStateEstimator(dec, ms).run()
        assert np.array_equal(base.Vm, on.Vm) and np.array_equal(base.Va, on.Va)
        assert np.array_equal(base.Vm, off.Vm) and np.array_equal(base.Va, off.Va)
        assert base.rounds == on.rounds == off.rounds
