"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.grid import run_ac_power_flow
from repro.grid.cases import case4, case14, case118, synthetic_grid


@pytest.fixture(scope="session")
def net4():
    return case4()


@pytest.fixture(scope="session")
def net14():
    return case14()


@pytest.fixture(scope="session")
def net118():
    return case118()


@pytest.fixture(scope="session")
def pf4(net4):
    return run_ac_power_flow(net4)


@pytest.fixture(scope="session")
def pf14(net14):
    return run_ac_power_flow(net14)


@pytest.fixture(scope="session")
def pf118(net118):
    return run_ac_power_flow(net118)


@pytest.fixture(scope="session")
def synth9x13():
    return synthetic_grid(n_areas=9, buses_per_area=13, seed=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
