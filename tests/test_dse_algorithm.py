"""Tests for the DSE algorithm, pseudo measurements and hierarchical baseline."""

import numpy as np
import pytest

from repro.dse import (
    DistributedStateEstimator,
    HierarchicalStateEstimator,
    assign_measurements,
    decompose,
    dse_pmu_placement,
    exchange_bus_sets,
    localize_measurements,
    pseudo_measurements,
    sensitive_internal_buses,
)
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118, synthetic_grid
from repro.measurements import (
    MeasType,
    full_placement,
    generate_measurements,
)


@pytest.fixture(scope="module")
def dse118():
    """Shared 118-bus DSE setup: decomposition + measurements + truth."""
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    return net, pf, dec, ms


class TestSensitivity:
    def test_sensitive_buses_are_internal(self, dse118):
        _, _, dec, _ = dse118
        for s in range(dec.m):
            sens = sensitive_internal_buses(dec, s)
            boundary = set(dec.boundary_buses(s).tolist())
            assert set(sens.tolist()).isdisjoint(boundary)
            assert np.all(dec.part[sens] == s)

    def test_threshold_monotone(self, dse118):
        _, _, dec, _ = dse118
        lo = sum(len(sensitive_internal_buses(dec, s, threshold=0.2)) for s in range(9))
        hi = sum(len(sensitive_internal_buses(dec, s, threshold=0.9)) for s in range(9))
        assert hi <= lo

    def test_exchange_sets_include_boundary(self, dse118):
        _, _, dec, _ = dse118
        sets = exchange_bus_sets(dec)
        for s in range(dec.m):
            assert set(dec.boundary_buses(s).tolist()) <= set(sets[s].tolist())


class TestAssignment:
    def test_every_row_assigned_at_most_once(self, dse118):
        _, _, dec, ms = dse118
        asg = assign_measurements(dec, ms)
        seen: set[int] = set()
        for s in range(dec.m):
            rows = set(asg.step1[s].tolist()) | set(asg.step2_extra[s].tolist())
            assert seen.isdisjoint(rows)
            seen |= rows
        assert seen == set(range(len(ms)))

    def test_step1_rows_are_internal(self, dse118):
        net, _, dec, ms = dse118
        asg = assign_measurements(dec, ms)
        ties = set(dec.tie_lines.tolist())
        for s in range(dec.m):
            boundary = set(dec.boundary_buses(s).tolist())
            for row in asg.step1[s]:
                m = ms[int(row)]
                if m.mtype in (MeasType.P_INJ, MeasType.Q_INJ):
                    assert m.element not in boundary
                if m.mtype.is_branch:
                    assert m.element not in ties

    def test_step2_extras_touch_boundary(self, dse118):
        net, _, dec, ms = dse118
        asg = assign_measurements(dec, ms)
        ties = set(dec.tie_lines.tolist())
        for s in range(dec.m):
            boundary = set(dec.boundary_buses(s).tolist())
            for row in asg.step2_extra[s]:
                m = ms[int(row)]
                if m.mtype.is_bus:
                    assert m.element in boundary
                else:
                    assert m.element in ties

    def test_localize_roundtrip(self, dse118):
        net, _, dec, ms = dse118
        asg = assign_measurements(dec, ms)
        from repro.dse import extract_subnetwork

        s = 0
        sub, bmap, brmap = extract_subnetwork(
            net, dec.buses(s), dec.internal_branches(s)
        )
        local = localize_measurements(ms, asg.step1[s], bmap, brmap)
        assert len(local) == len(asg.step1[s])
        # values survive the re-indexing
        zs = sorted(local.z.tolist())
        zg = sorted(ms.z[asg.step1[s]].tolist())
        assert np.allclose(zs, zg)

    def test_localize_rejects_foreign_rows(self, dse118):
        net, _, dec, ms = dse118
        asg = assign_measurements(dec, ms)
        from repro.dse import extract_subnetwork

        sub, bmap, brmap = extract_subnetwork(
            net, dec.buses(0), dec.internal_branches(0)
        )
        with pytest.raises(ValueError):
            localize_measurements(ms, asg.step1[1], bmap, brmap)


class TestPseudoMeasurements:
    def test_pairs_per_bus(self):
        ms = pseudo_measurements(
            np.array([2, 5]), np.array([1.0, 1.01]), np.array([0.1, 0.2])
        )
        assert ms.count(MeasType.V_MAG) == 2
        assert ms.count(MeasType.PMU_VA) == 2

    def test_values_aligned(self):
        ms = pseudo_measurements(np.array([3]), np.array([1.05]), np.array([-0.3]))
        assert ms.z[ms.rows(MeasType.V_MAG)[0]] == 1.05
        assert ms.z[ms.rows(MeasType.PMU_VA)[0]] == -0.3


class TestDsePmuPlacement:
    def test_one_anchor_per_subsystem(self, dse118):
        _, _, dec, _ = dse118
        plac = dse_pmu_placement(dec)
        anchored = {int(dec.part[m.element]) for m in plac
                    if m.mtype == MeasType.PMU_VA}
        assert anchored == set(range(dec.m))


class TestDistributedStateEstimation:
    def test_close_to_centralized(self, dse118):
        net, pf, dec, ms = dse118
        cen = estimate_state(net, ms)
        dse = DistributedStateEstimator(dec, ms).run()
        dva = dse.Va - cen.Va
        dva -= dva.mean()
        assert np.abs(dse.Vm - cen.Vm).max() < 5e-3
        assert np.abs(dva).max() < 5e-3

    def test_error_within_measurement_accuracy(self, dse118):
        net, pf, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms).run()
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 3e-3
        assert err["va_rmse"] < 3e-3

    def test_round_deltas_decrease(self, dse118):
        _, _, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms).run(rounds=3)
        assert res.round_deltas[-1] < res.round_deltas[0]

    def test_default_rounds_is_diameter(self, dse118):
        _, _, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms).run()
        assert res.rounds == max(1, dec.diameter())

    def test_step2_improves_on_step1(self, dse118):
        """Step 2 re-evaluation reduces boundary-bus error vs Step 1 alone."""
        net, pf, dec, ms = dse118
        dse = DistributedStateEstimator(dec, ms)
        res = dse.run()
        boundary = np.unique(
            np.concatenate([dec.boundary_buses(s) for s in range(dec.m)])
        )
        # Reconstruct the Step-1-only state.
        vm1 = np.ones(net.n_bus)
        va1 = np.zeros(net.n_bus)
        for s, rec in res.records.items():
            own = dec.buses(s)
            vm1[own] = rec.step1_result.Vm
            va1[own] = rec.step1_result.Va
        err1 = np.abs(vm1[boundary] - pf.Vm[boundary]).mean()
        err2 = np.abs(res.Vm[boundary] - pf.Vm[boundary]).mean()
        assert err2 <= err1

    def test_records_complete(self, dse118):
        _, _, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms).run(rounds=2)
        assert set(res.records) == set(range(dec.m))
        for rec in res.records.values():
            assert rec.step1_result is not None
            assert len(rec.step2_results) == 2
            assert len(rec.bytes_sent_per_round) == 2
            assert rec.exchange_size >= rec.n_boundary

    def test_bytes_exchanged_positive(self, dse118):
        _, _, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms).run()
        assert res.total_bytes_exchanged > 0

    def test_update_scope_all(self, dse118):
        net, pf, dec, ms = dse118
        res = DistributedStateEstimator(dec, ms, update_scope="all").run()
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 3e-3

    def test_invalid_scope(self, dse118):
        _, _, dec, ms = dse118
        with pytest.raises(ValueError):
            DistributedStateEstimator(dec, ms, update_scope="bogus")

    def test_missing_anchor_detected(self, dse118):
        net, pf, dec, _ = dse118
        rng = np.random.default_rng(1)
        no_pmu = generate_measurements(net, full_placement(net), pf, rng=rng)
        with pytest.raises(ValueError, match="synchronized"):
            DistributedStateEstimator(dec, no_pmu)

    def test_works_on_synthetic_grid(self):
        net = synthetic_grid(n_areas=4, buses_per_area=12, seed=2)
        pf = run_ac_power_flow(net, flat_start=True)
        dec = decompose(net, 4, seed=0)
        rng = np.random.default_rng(3)
        plac = full_placement(net).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        res = DistributedStateEstimator(dec, ms).run()
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 5e-3


class TestHierarchical:
    def test_accuracy(self, dse118):
        net, pf, dec, ms = dse118
        res = HierarchicalStateEstimator(dec, ms).run()
        err = res.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 5e-3
        assert err["va_rmse"] < 5e-3

    def test_offsets_small_with_pmu_anchors(self, dse118):
        _, _, dec, ms = dse118
        res = HierarchicalStateEstimator(dec, ms).run()
        assert np.max(np.abs(res.offsets)) < 0.05

    def test_coordination_aligns_references(self, dse118):
        """Without coordination the local references disagree; offsets fix it."""
        net, pf, dec, ms = dse118
        res = HierarchicalStateEstimator(dec, ms).run()
        # raw locals (before offsets) vs corrected
        va_raw = res.Va - res.offsets[dec.part]
        dva_raw = va_raw - pf.Va
        dva_raw -= dva_raw.mean()
        dva = res.Va - pf.Va
        dva -= dva.mean()
        assert np.abs(dva).max() <= np.abs(dva_raw).max() + 1e-12

    def test_bytes_to_coordinator(self, dse118):
        _, _, dec, ms = dse118
        res = HierarchicalStateEstimator(dec, ms).run()
        assert res.bytes_to_coordinator > 0

    def test_local_results_per_subsystem(self, dse118):
        _, _, dec, ms = dse118
        res = HierarchicalStateEstimator(dec, ms).run()
        assert set(res.local_results) == set(range(dec.m))
