"""Tests for the contingency-analysis substrate."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ClusterTopology, pnnl_testbed
from repro.contingency import (
    Contingency,
    ContingencyAnalyzer,
    apply_outage,
    enumerate_n1,
    run_parallel_threads,
    simulate_parallel_analysis,
)
from repro.estimation import estimate_state
from repro.grid import find_islands, run_ac_power_flow
from repro.measurements import full_placement, generate_measurements


class TestEnumeration:
    def test_case14_radial_branch_islanding(self, net14):
        safe, islanding = enumerate_n1(net14)
        assert len(safe) + len(islanding) == 20
        assert [c.label for c in islanding] == ["7-8"]

    def test_case118_known_radials(self, net118):
        _, islanding = enumerate_n1(net118)
        labels = {c.label for c in islanding}
        # the well-known radial stubs of the 118 system
        assert "9-10" in labels
        assert "86-87" in labels
        assert "12-117" in labels

    def test_safe_outages_stay_connected(self, net14):
        safe, _ = enumerate_n1(net14)
        for c in safe:
            outaged = apply_outage(net14, c)
            assert len(find_islands(outaged)) == 1

    def test_islanding_outages_split(self, net14):
        _, islanding = enumerate_n1(net14)
        for c in islanding:
            outaged = apply_outage(net14, c)
            assert len(find_islands(outaged)) > 1

    def test_parallel_circuit_is_safe(self, net118):
        safe, _ = enumerate_n1(net118)
        # 42-49 is a double circuit: outaging one leg must be safe
        labels = [c.label for c in safe]
        assert labels.count("42-49") == 2

    def test_apply_outage_does_not_mutate(self, net14):
        c = Contingency(branch=0, label="x")
        before = net14.br_status.copy()
        apply_outage(net14, c)
        assert np.array_equal(net14.br_status, before)

    def test_bad_branch_rejected(self, net14):
        with pytest.raises(ValueError):
            apply_outage(net14, Contingency(branch=999, label="x"))
        with pytest.raises(ValueError):
            Contingency(branch=-1, label="x")


class TestAnalyzer:
    def test_no_outage_no_violation(self, net118):
        an = ContingencyAnalyzer(net118, method="dc", rating_margin=1.3)
        # base-case flows are within their own derived ratings by construction
        assert np.all(np.abs(an.base.Pf) <= an.ratings + 1e-12)

    def test_loose_ratings_secure(self, net14):
        an = ContingencyAnalyzer(net14, method="dc", rating_margin=10.0)
        safe, _ = enumerate_n1(net14)
        results = an.analyze_all(safe)
        assert all(r.secure for r in results)

    def test_tight_ratings_flag_violations(self, net118):
        an = ContingencyAnalyzer(net118, method="dc", rating_margin=1.05)
        safe, _ = enumerate_n1(net118)
        results = an.analyze_all(safe[:20])
        assert any(not r.secure for r in results)
        for r in results:
            for v in r.violations:
                assert v.loading > 1.0

    def test_ac_method(self, net14):
        an = ContingencyAnalyzer(net14, method="ac", rating_margin=3.0)
        safe, _ = enumerate_n1(net14)
        r = an.analyze(safe[0])
        assert r.converged
        assert r.iterations > 0

    def test_method_validated(self, net14):
        with pytest.raises(ValueError):
            ContingencyAnalyzer(net14, method="magic")

    def test_ratings_length_checked(self, net14):
        with pytest.raises(ValueError):
            ContingencyAnalyzer(net14, ratings=np.ones(3))

    def test_from_estimate(self, net118, pf118):
        rng = np.random.default_rng(0)
        ms = generate_measurements(net118, full_placement(net118), pf118, rng=rng)
        est = estimate_state(net118, ms)
        an = ContingencyAnalyzer.from_estimate(net118, est, method="dc")
        safe, _ = enumerate_n1(net118)
        r = an.analyze(safe[0])
        assert r.converged

    def test_max_loading_increases_after_outage(self, net118):
        """Removing a loaded branch pushes flow onto neighbours."""
        an = ContingencyAnalyzer(net118, method="dc", rating_margin=2.0)
        safe, _ = enumerate_n1(net118)
        # pick the most loaded safe branch
        flows = np.abs(an.base.Pf)
        c = max(safe, key=lambda c: flows[c.branch])
        r = an.analyze(c)
        base_max = float((flows[net118.live_branches()] /
                          an.ratings[net118.live_branches()]).max())
        assert r.max_loading >= base_max - 1e-9


class TestParallelThreads:
    @pytest.fixture(scope="class")
    def setup(self, net118):
        an = ContingencyAnalyzer(net118, method="dc", rating_margin=1.3)
        safe, _ = enumerate_n1(net118)
        return an, safe[:24]

    @pytest.mark.parametrize("scheme", ["static", "dynamic"])
    def test_matches_serial(self, setup, scheme):
        an, cons = setup
        serial = an.analyze_all(cons)
        rep = run_parallel_threads(an, cons, n_workers=4, scheme=scheme)
        assert len(rep.results) == len(serial)
        assert sum(rep.per_worker_cases) == len(cons)
        # same security verdicts regardless of execution order
        assert ([r.secure for r in rep.results] == [r.secure for r in serial])

    def test_scheme_validated(self, setup):
        an, cons = setup
        with pytest.raises(ValueError):
            run_parallel_threads(an, cons, scheme="bogus")
        with pytest.raises(ValueError):
            run_parallel_threads(an, cons, n_workers=0)


class TestSimulatedBalancing:
    def test_dynamic_beats_static_on_skewed_durations(self):
        """Chen et al.'s result: with variable case times, counter-based
        dynamic balancing has the smaller makespan."""
        rng = np.random.default_rng(1)
        durations = rng.lognormal(-4.0, 1.2, 400)
        topo = ClusterTopology(
            clusters=[ClusterSpec(name="c", nodes=1, cores_per_node=8)]
        )
        dyn = simulate_parallel_analysis(durations, topo, scheme="dynamic")
        sta = simulate_parallel_analysis(durations, topo, scheme="static")
        assert dyn.makespan < sta.makespan

    def test_uniform_durations_near_tie(self):
        durations = np.full(64, 0.01)
        topo = ClusterTopology(
            clusters=[ClusterSpec(name="c", nodes=1, cores_per_node=8)]
        )
        dyn = simulate_parallel_analysis(durations, topo, scheme="dynamic")
        sta = simulate_parallel_analysis(durations, topo, scheme="static")
        assert dyn.makespan == pytest.approx(sta.makespan, rel=0.05)

    def test_makespan_lower_bound(self):
        rng = np.random.default_rng(2)
        durations = rng.uniform(0.001, 0.01, 100)
        topo = pnnl_testbed()
        rep = simulate_parallel_analysis(durations, topo, scheme="dynamic")
        n_workers = sum(c.total_cores for c in topo.clusters)
        assert rep.makespan >= durations.sum() / n_workers - 1e-12
        assert rep.makespan >= durations.max() - 1e-12

    def test_validation(self):
        topo = pnnl_testbed()
        with pytest.raises(ValueError):
            simulate_parallel_analysis(np.array([-1.0]), topo)
        with pytest.raises(ValueError):
            simulate_parallel_analysis(np.array([1.0]), topo, scheme="bogus")

    def test_all_cases_executed(self):
        rng = np.random.default_rng(3)
        durations = rng.uniform(0.001, 0.01, 77)
        topo = pnnl_testbed()
        rep = simulate_parallel_analysis(durations, topo, scheme="dynamic")
        assert sum(rep.per_worker_cases) == 77
