"""Tests for multi-hop pipeline routing and warm-started DSE."""

import time

import numpy as np
import pytest

from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements
from repro.middleware import InprocTransport, MifComponent, MifPipeline


class TestMultiHopPipelines:
    """Pipelines chain naturally: the outbound endpoint of one relay can be
    the inbound endpoint of another — the hierarchical routing structure of
    the architecture's Figure 1 top layer."""

    def _chain(self, hops: int):
        t = InprocTransport()
        sink = t.listen("inproc://final-sink")
        pipelines = []
        next_out = "inproc://final-sink"
        entry = None
        for h in reversed(range(hops)):
            pipeline = MifPipeline(inproc=t)
            comp = MifComponent(f"hop{h}")
            pipeline.add_mif_component(comp)
            comp.set_in_endpoint(f"inproc://hop-{h}")
            comp.set_out_endpoint(next_out)
            pipeline.start()
            pipelines.append(pipeline)
            next_out = f"inproc://hop-{h}"
            entry = comp.in_endpoint
        return t, sink, pipelines, entry

    def test_two_hop_delivery(self):
        t, sink, pipelines, entry = self._chain(2)
        try:
            conn = t.connect(entry)
            conn.send_bytes(b"through two relays")
            server = sink.accept(timeout=2)
            assert server.recv_bytes(timeout=2) == b"through two relays"
        finally:
            for p in pipelines:
                p.stop()

    def test_each_hop_counts_frames(self):
        t, sink, pipelines, entry = self._chain(3)
        try:
            conn = t.connect(entry)
            for _ in range(4):
                conn.send_bytes(b"x" * 64)
            server = sink.accept(timeout=2)
            for _ in range(4):
                server.recv_bytes(timeout=2)
            time.sleep(0.1)
            for p in pipelines:
                assert p.components[0].frames_relayed == 4
        finally:
            for p in pipelines:
                p.stop()

    def test_transforms_compose_in_order(self):
        t = InprocTransport()
        sink = t.listen("inproc://c-sink")
        p2 = MifPipeline(inproc=t)
        c2 = MifComponent("suffix", transform=lambda b: b + b"!")
        p2.add_mif_component(c2)
        c2.set_in_endpoint("inproc://c-mid")
        c2.set_out_endpoint("inproc://c-sink")
        p2.start()
        p1 = MifPipeline(inproc=t)
        c1 = MifComponent("upper", transform=lambda b: b.upper())
        p1.add_mif_component(c1)
        c1.set_in_endpoint("inproc://c-entry")
        c1.set_out_endpoint("inproc://c-mid")
        p1.start()
        try:
            conn = t.connect("inproc://c-entry")
            conn.send_bytes(b"abc")
            server = sink.accept(timeout=2)
            assert server.recv_bytes(timeout=2) == b"ABC!"
        finally:
            p1.stop()
            p2.stop()


class TestWarmStartedDse:
    def test_warm_start_reduces_step1_iterations(self, net118, pf118):
        dec = decompose(net118, 9, seed=0)
        rng = np.random.default_rng(0)
        plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net118, plac, pf118, rng=rng)

        dse = DistributedStateEstimator(dec, ms)
        cold = dse.run()
        warm = dse.run(x0=(cold.Vm, cold.Va))

        cold_iters = sum(r.step1_result.iterations for r in cold.records.values())
        warm_iters = sum(r.step1_result.iterations for r in warm.records.values())
        assert warm_iters < cold_iters
        # same answer either way
        assert np.allclose(warm.Vm, cold.Vm, atol=1e-7)

    def test_session_warm_starts_after_first_frame(self, net118, pf118):
        from repro.core import ArchitecturePrototype, DseSession

        rng = np.random.default_rng(1)
        with ArchitecturePrototype.assemble(net118, m_subsystems=9, seed=0) as arch:
            plac = full_placement(net118).merged_with(dse_pmu_placement(arch.dec))
            session = DseSession(arch)
            walls = []
            for _ in range(3):
                ms = generate_measurements(net118, plac, pf118, rng=rng)
                rep = session.process_frame(ms)
                walls.append(rep.wall_time)
            # warm frames are not slower than the cold first frame (exact
            # speedup varies with machine load; the iteration-count win is
            # asserted deterministically in the test above)
            assert min(walls[1:]) < walls[0] * 1.5
            assert len(session.reports) == 3
