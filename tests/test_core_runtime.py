"""Tests for the live distributed DSE runtime."""

import numpy as np
import pytest

from repro.core import LiveDseRuntime
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118, synthetic_grid
from repro.measurements import full_placement, generate_measurements


@pytest.fixture(scope="module")
def live_setup(net118, pf118):
    dec = decompose(net118, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net118).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net118, plac, pf118, rng=rng)
    ref = DistributedStateEstimator(dec, ms).run()
    return dec, ms, ref


class TestLiveRuntime:
    def test_bitwise_match_inproc(self, live_setup):
        """The live sites, fed only by wire bytes, reproduce the in-process
        DSE exactly (same Jacobi schedule, same solver, same data)."""
        dec, ms, ref = live_setup
        live = LiveDseRuntime(dec, ms).run()
        assert live.errors == []
        assert np.array_equal(live.Vm, ref.Vm)
        assert np.array_equal(live.Va, ref.Va)

    def test_bitwise_match_tcp(self, live_setup):
        dec, ms, ref = live_setup
        live = LiveDseRuntime(dec, ms, use_tcp=True).run()
        assert live.errors == []
        assert np.array_equal(live.Vm, ref.Vm)
        assert np.array_equal(live.Va, ref.Va)

    @pytest.mark.parametrize("use_tcp", [False, True])
    def test_bitwise_match_legacy_pipelines(self, live_setup, use_tcp):
        """The legacy per-pair pipeline plane stays bit-identical too."""
        dec, ms, ref = live_setup
        live = LiveDseRuntime(dec, ms, use_tcp=use_tcp, fast=False).run()
        assert live.errors == []
        assert np.array_equal(live.Vm, ref.Vm)
        assert np.array_equal(live.Va, ref.Va)

    def test_fast_and_legacy_planes_bitwise_equal(self, live_setup):
        """Same bytes, same barrier schedule: the multiplexed fast path
        and the per-pair pipelines produce identical results."""
        dec, ms, _ = live_setup
        fast = LiveDseRuntime(dec, ms, fast=True).run()
        legacy = LiveDseRuntime(dec, ms, fast=False).run()
        assert fast.errors == [] and legacy.errors == []
        assert np.array_equal(fast.Vm, legacy.Vm)
        assert np.array_equal(fast.Va, legacy.Va)

    def test_site_stats_recorded(self, live_setup):
        dec, ms, _ = live_setup
        live = LiveDseRuntime(dec, ms).run()
        assert set(live.sites) == set(range(dec.m))
        for s, st in live.sites.items():
            assert st.step1_time > 0
            assert len(st.step2_times) == live.rounds
            expected_msgs = live.rounds * len(dec.neighbors(s))
            assert st.messages_received == expected_msgs
            assert st.bytes_sent > 0

    def test_conservation_of_bytes(self, live_setup):
        """Every byte sent is received by exactly one site."""
        dec, ms, _ = live_setup
        live = LiveDseRuntime(dec, ms).run()
        sent = sum(st.bytes_sent for st in live.sites.values())
        received = sum(st.bytes_received for st in live.sites.values())
        assert sent == received

    def test_rounds_default_diameter(self, live_setup):
        dec, ms, _ = live_setup
        live = LiveDseRuntime(dec, ms).run()
        assert live.rounds == max(1, dec.diameter())

    def test_explicit_rounds(self, live_setup):
        dec, ms, _ = live_setup
        live = LiveDseRuntime(dec, ms).run(rounds=1)
        assert live.rounds == 1
        for st in live.sites.values():
            assert len(st.step2_times) == 1

    def test_wall_time_positive(self, live_setup):
        dec, ms, _ = live_setup
        live = LiveDseRuntime(dec, ms).run()
        assert live.wall_time > 0

    def test_empty_fault_plan_keeps_bitwise_parity(self, live_setup):
        """An installed injector with no rules leaves both data planes
        bit-identical — the hooks are consulted but never fire."""
        from repro import faults
        from repro.faults import FaultPlan

        dec, ms, ref = live_setup
        with faults.injection(FaultPlan(seed=7)) as inj:
            fast = LiveDseRuntime(dec, ms, fast=True).run()
            legacy = LiveDseRuntime(dec, ms, fast=False).run()
        assert inj.total_fired() == 0
        for live in (fast, legacy):
            assert live.errors == []
            assert live.degraded == {}
            assert live.degraded_subsystems == []
            assert np.array_equal(live.Vm, ref.Vm)
            assert np.array_equal(live.Va, ref.Va)

    def test_starved_site_runs_degraded_round(self, live_setup):
        """Dropping every update bound for one site starves it for the
        round; it keeps solving on last-known values and flags the round."""
        from repro import faults
        from repro.faults import FaultPlan

        dec, ms, _ = live_setup
        plan = FaultPlan(seed=0).add("mux.forward", "drop", key=(None, 0))
        live = LiveDseRuntime(dec, ms, fast=True, recv_timeout=0.3)
        with faults.injection(plan):
            res = live.run(rounds=1)
        assert res.degraded == {0: [0]}
        assert res.sites[0].degraded_rounds == [0]
        assert res.errors

    def test_small_synthetic_grid(self):
        net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
        pf = run_ac_power_flow(net, flat_start=True)
        dec = decompose(net, 3, seed=0)
        rng = np.random.default_rng(5)
        plac = full_placement(net).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        live = LiveDseRuntime(dec, ms).run()
        assert live.errors == []
        err = live.state_error(pf.Vm, pf.Va)
        assert err["vm_rmse"] < 5e-3
