#!/usr/bin/env python
"""Lint: every metric/span name used in src/ must appear in the
observability taxonomy (docs/observability.md, plus the recovery-plane
names in docs/recovery.md).

The docs are the contract obsreport/obstop users and dashboard configs
depend on; PR 8 renamed ``serving.shed_total`` to ``serving.shed{cause}``
in code and the docs drifted until review caught it.  This check makes
that drift a verify failure:

- **error** (exit 1): a literal metric name passed to
  ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``, or a span
  name passed to ``obs.span`` / ``start_span`` / a recorder's ``.span``,
  that the docs never mention;
- **warning** (exit 0): a documented name no source file uses — stale
  docs worth pruning, but not a gate (dynamic names land here).

Names built at runtime (f-strings, variables) are invisible to this
lint by design — the taxonomy documents the static namespace.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
DOCS = (
    ROOT / "docs" / "observability.md",
    ROOT / "docs" / "recovery.md",
)

#: literal first-argument names of metric constructors
_METRIC_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*[\"']([a-z][a-z0-9_.]*)[\"']"
)
#: literal span names: obs.span("..."), tracer.start_span("..."),
#: recorder.span("...")
_SPAN_RE = re.compile(
    r"(?:\bobs\.span|\.start_span|\brec\.span|recorder\.span|\bsp\.span)"
    r"\(\s*[\"']([a-z][a-z0-9_.]*)[\"']"
)
#: doc tokens that look like taxonomy names: dotted lower-case
#: identifiers, optionally with a {label} suffix (stripped)
_DOC_NAME_RE = re.compile(r"\b([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)(?:\{[^}]*\})?")


def collect_src_names() -> dict[str, set[str]]:
    """``{name: {files using it}}`` for every literal metric/span name."""
    used: dict[str, set[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        rel = str(path.relative_to(ROOT))
        for regex in (_METRIC_RE, _SPAN_RE):
            for m in regex.finditer(text):
                used.setdefault(m.group(1), set()).add(rel)
    return used


def collect_doc_names() -> set[str]:
    """Every taxonomy-shaped name mentioned anywhere in the docs (prose,
    backticked lists, and the span-tree code fences)."""
    text = "\n".join(d.read_text(encoding="utf-8") for d in DOCS)
    return {m.group(1) for m in _DOC_NAME_RE.finditer(text)}


def main() -> int:
    missing = [d for d in DOCS if not d.exists()]
    if missing:
        for d in missing:
            print(f"check_metric_names: missing {d}", file=sys.stderr)
        return 1
    used = collect_src_names()
    documented = collect_doc_names()

    undocumented = {
        name: files for name, files in sorted(used.items())
        if name not in documented
    }
    unused = sorted(
        name for name in documented
        if name not in used
        # prose contains dotted python identifiers too; only flag names
        # under a telemetry namespace we actually emit from
        and name.split(".", 1)[0] in {
            n.split(".", 1)[0] for n in used
        }
        # ...and skip filename-shaped tokens (session.jsonl etc.)
        and name.rsplit(".", 1)[1] not in {"jsonl", "json", "md", "py", "txt"}
    )

    if unused:
        print(
            f"check_metric_names: note: {len(unused)} documented name(s) "
            "with no literal use in src/ (dynamic or stale):"
        )
        for name in unused:
            print(f"  - {name}")

    if undocumented:
        print(
            "check_metric_names: FAIL — names used in src/ but absent "
            "from the docs taxonomy (observability.md / recovery.md):",
            file=sys.stderr,
        )
        for name, files in undocumented.items():
            print(f"  - {name}  ({', '.join(sorted(files))})", file=sys.stderr)
        return 1

    print(
        f"check_metric_names: OK — {len(used)} literal names all "
        "documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
