#!/usr/bin/env bash
# Repo verification: tier-1 test suite + quickstart smoke run.
#
#   scripts/verify.sh            # full tier-1 pytest + quickstart example
#   scripts/verify.sh --fast     # quickstart smoke only
#
# Mirrors the tier-1 gate in ROADMAP.md; run it before every commit.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "--fast" ]]; then
    echo "== tier-1 test suite =="
    python -m pytest -x -q
fi

echo "== metric-name taxonomy lint =="
python scripts/check_metric_names.py

echo "== quickstart smoke =="
python examples/quickstart.py

echo "== scenario serving smoke (tiny batch) =="
python examples/serve_scenarios.py --tiny

echo "== middleware round-trip smoke (inproc + localhost TCP) =="
python examples/middleware_roundtrip.py

echo "== observability smoke (traces across workers + TCP mux hop) =="
python examples/observability_demo.py

echo "== chaos smoke (seeded fault plan, retries, degraded live run) =="
python examples/chaos_demo.py

echo "== batch sweep smoke (copy-on-write forks + SIMD batch solves) =="
python examples/batch_sweep.py

echo "== condensed DSE smoke (Schur-reduced Step-2 exchange and solve) =="
python examples/condensed_dse.py

echo "== sharded serving smoke (hash-ring router, drain, no loss) =="
python examples/serve_sharded.py --tiny

echo "== health plane smoke (watchdog, SLO burn, telemetry, blackbox) =="
python examples/health_demo.py

echo "== recovery smoke (site kill, lease expiry, epoch-fenced failover) =="
python examples/recovery_demo.py

echo "verify: OK"
